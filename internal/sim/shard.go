// Conservative parallel mode for the event engine.
//
// The model follows classic conservative parallel discrete-event simulation
// (and its recent application to GPU timing simulators, "Parallelizing a
// modern GPU simulator", arXiv 2502.14691): the event population is
// partitioned into shards — in the CHOPIN simulator one per GPU plus one for
// the interconnect fabric — and a shard may run ahead of the others only up
// to a barrier at now + lookahead, where lookahead is the minimum
// cross-shard latency (the 200-cycle link latency). Within a window, events
// on distinct shards are causally independent: any event one shard creates
// for another lands at or beyond the barrier, so no shard can receive work
// it should already have processed.
//
// Run proceeds window by window:
//
//  1. barrier = earliest pending timestamp + lookahead.
//  2. If the window holds any global (unsharded) event, fewer than two
//     distinct shards, a watcher/probe hook, or the engine has fewer than
//     two workers, the window is drained with the ordinary sequential
//     Step loop — bit-identical to the purely sequential engine.
//  3. Otherwise events below the barrier are popped — in exact (at, seq)
//     order — into per-shard queues and the shards run concurrently, each
//     with a private clock and staging buffer. Same-shard insertions below
//     the barrier go straight into the shard's local queue; everything else
//     (cross-shard sends, global events, post-barrier work) is staged.
//  4. At the barrier the workers are joined and staged + leftover events
//     are merged back into the global queue in canonical order: ascending
//     shard id, local queue order first, then staging-buffer append order,
//     each receiving a fresh global sequence number.
//
// The merge order is deterministic — it depends only on the shard
// partition, never on goroutine scheduling — so a run is a pure function of
// its inputs at any worker count. Step 2 is the determinism argument for
// the simulator's committed goldens: scheme-orchestration events (draw
// issue, barriers, deliveries) are global, so every window that contains
// one serializes and the observable event order is exactly the sequential
// order. Windows where all pending work is shard-affine (the differential
// harness in shard_test.go constructs these) run genuinely in parallel and
// are covered under -race.
package sim

import (
	"sync"
	"sync/atomic"
)

// ShardID identifies an event's affinity. ShardGlobal (the zero value)
// means the event may touch any simulator state and forces its window to
// serialize; ids 1..Shards name shards that may run concurrently.
type ShardID int32

// ShardGlobal marks an event with no shard affinity.
const ShardGlobal ShardID = 0

// ShardFunc is a shard-affine scheduled action. It receives the context it
// is running under — sequential dispatch or a parallel-window worker — and
// must do all of its scheduling through that context so insertions made
// inside a window are staged for the barrier merge instead of racing on the
// global queue.
type ShardFunc func(sc *ShardCtx)

// parallel is the conservative-mode state hung off an Engine.
type parallel struct {
	shards    int
	workers   int
	lookahead Cycle

	// inWindow is set while worker goroutines own the shard queues; the
	// engine facade panics on scheduling attempts during that span. Written
	// only by the dispatching goroutine.
	inWindow bool

	states []shardState  // indexed by ShardID; slot 0 unused
	active []*shardState // shards holding work this window, population order
	sem    chan struct{} // bounds concurrently running shard workers

	parWindows int64 // windows dispatched across workers
	seqWindows int64 // windows drained sequentially
	violations int64 // staged insertions that landed below their barrier
}

// shardState is one shard's private slice of a window.
type shardState struct {
	id      ShardID
	q       eventHeap
	now     Cycle
	barrier Cycle
	seq     int64 // local tie-break counter, branched from the global seq
	staged  []event
	ctx     ShardCtx
	active  bool
	panicv  any
}

// ConfigureShards partitions the event population into shards 1..shards
// with the given lookahead (the minimum latency of any cross-shard
// interaction; must be positive). Shard-tagged events may then be scheduled
// with the *On variants and ShardFunc APIs. Configuration alone does not
// change execution — Run only parallelizes once SetWorkers grants more than
// one worker.
func (e *Engine) ConfigureShards(shards int, lookahead Cycle) {
	if shards < 1 {
		panic("sim: ConfigureShards needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: ConfigureShards needs a positive lookahead")
	}
	p := e.ensurePar()
	p.shards = shards
	p.lookahead = lookahead
	p.states = make([]shardState, shards+1)
	for i := 1; i <= shards; i++ {
		s := &p.states[i]
		s.id = ShardID(i)
		s.ctx = ShardCtx{e: e, shard: ShardID(i), w: s}
	}
	p.active = make([]*shardState, 0, shards)
}

// SetWorkers bounds the engine's worker-goroutine fan-out, for both
// parallel windows and Fanout. n < 1 is treated as 1 (sequential).
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p := e.ensurePar()
	p.workers = n
	p.sem = make(chan struct{}, n)
}

func (e *Engine) ensurePar() *parallel {
	if e.par == nil {
		e.par = &parallel{workers: 1}
	}
	return e.par
}

// Workers returns the configured worker bound (1 when unconfigured).
func (e *Engine) Workers() int {
	if e.par == nil {
		return 1
	}
	return e.par.workers
}

// Shards returns the configured shard count (0 when unconfigured).
func (e *Engine) Shards() int {
	if e.par == nil {
		return 0
	}
	return e.par.shards
}

// Lookahead returns the configured conservative window (0 when
// unconfigured).
func (e *Engine) Lookahead() Cycle {
	if e.par == nil {
		return 0
	}
	return e.par.lookahead
}

// ParallelWindows reports how many windows were dispatched across workers;
// the differential harness asserts it is nonzero where parallelism is
// expected.
func (e *Engine) ParallelWindows() int64 {
	if e.par == nil {
		return 0
	}
	return e.par.parWindows
}

// SequentialWindows reports how many windows were drained sequentially
// under parallel mode (global events, hooks, or a single active shard).
func (e *Engine) SequentialWindows() int64 {
	if e.par == nil {
		return 0
	}
	return e.par.seqWindows
}

// LookaheadViolations counts staged insertions that landed below the
// barrier of the window that created them — a model scheduling cross-shard
// work at less than the declared lookahead. The merge still orders them
// deterministically, but determinism versus the sequential engine is no
// longer guaranteed; harnesses assert this stays zero.
func (e *Engine) LookaheadViolations() int64 {
	if e.par == nil {
		return 0
	}
	return e.par.violations
}

// checkShard validates a shard tag against the configuration.
func (e *Engine) checkShard(s ShardID) {
	if s < 0 {
		panic("sim: negative shard id")
	}
	if p := e.par; p != nil && p.shards > 0 && int(s) > p.shards {
		panic("sim: shard id beyond configured shard count")
	}
}

// AtOn schedules fn at cycle t with the given shard affinity. The caller
// asserts that fn touches only that shard's state (plus anything it reaches
// strictly through scheduling); windows made entirely of such events may
// run in parallel.
func (e *Engine) AtOn(s ShardID, t Cycle, fn func()) {
	e.guardWindow()
	e.checkShard(s)
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.push(event{at: t, shard: s, fn: fn})
}

// AfterOn schedules fn on shard s, d cycles from now. Negative delays panic.
func (e *Engine) AfterOn(s ShardID, d Cycle, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.AtOn(s, e.now+d, fn)
}

// AtCallOn is AtCall with a shard affinity: allocation-free for
// pointer-backed Callbacks.
func (e *Engine) AtCallOn(s ShardID, t Cycle, cb Callback) {
	e.guardWindow()
	e.checkShard(s)
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.push(event{at: t, shard: s, cb: cb})
}

// AfterCallOn schedules cb on shard s, d cycles from now.
func (e *Engine) AfterCallOn(s ShardID, d Cycle, cb Callback) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.AtCallOn(s, e.now+d, cb)
}

// AtShardFunc schedules a context-aware action on shard s. ShardFuncs are
// the only event kind that may reschedule from inside a parallel window, so
// models that want genuine window parallelism express their event chains
// with them.
func (e *Engine) AtShardFunc(s ShardID, t Cycle, fn ShardFunc) {
	e.guardWindow()
	e.checkShard(s)
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.push(event{at: t, shard: s, sfn: fn})
}

// AfterShardFunc schedules a context-aware action on shard s, d cycles from
// now.
func (e *Engine) AfterShardFunc(s ShardID, d Cycle, fn ShardFunc) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.AtShardFunc(s, e.now+d, fn)
}

// ShardCtx is the scheduling context a ShardFunc runs under. Outside a
// parallel window it forwards to the engine directly; inside one it routes
// same-shard below-barrier work into the shard's private queue and stages
// everything else for the barrier merge.
type ShardCtx struct {
	e     *Engine
	shard ShardID
	w     *shardState // nil when dispatched sequentially
}

// Shard returns the shard this context schedules on by default.
func (c *ShardCtx) Shard() ShardID { return c.shard }

// Now returns the current time as seen by this context: the shard-local
// clock inside a parallel window, the engine clock otherwise.
func (c *ShardCtx) Now() Cycle {
	if c.w != nil {
		return c.w.now
	}
	return c.e.now
}

// Lookahead returns the engine's configured conservative window.
func (c *ShardCtx) Lookahead() Cycle { return c.e.Lookahead() }

// At schedules fn on this context's own shard at cycle t.
func (c *ShardCtx) At(t Cycle, fn ShardFunc) { c.sched(c.shard, t, event{sfn: fn}) }

// After schedules fn on this context's own shard, d cycles from Now.
func (c *ShardCtx) After(d Cycle, fn ShardFunc) {
	if d < 0 {
		panic("sim: negative delay")
	}
	c.sched(c.shard, c.Now()+d, event{sfn: fn})
}

// AtShard schedules fn on shard s at cycle t. From inside a parallel window
// a cross-shard target must satisfy t >= the window barrier (the
// conservative lookahead contract); earlier targets are still merged
// deterministically but are counted as lookahead violations.
func (c *ShardCtx) AtShard(s ShardID, t Cycle, fn ShardFunc) {
	c.e.checkShard(s)
	c.sched(s, t, event{sfn: fn})
}

// AfterShard schedules fn on shard s, d cycles from Now.
func (c *ShardCtx) AfterShard(s ShardID, d Cycle, fn ShardFunc) {
	if d < 0 {
		panic("sim: negative delay")
	}
	c.AtShard(s, c.Now()+d, fn)
}

// AtGlobal schedules an unsharded closure at cycle t; the window containing
// it will serialize.
func (c *ShardCtx) AtGlobal(t Cycle, fn func()) { c.sched(ShardGlobal, t, event{fn: fn}) }

// AtCallGlobal schedules an unsharded Callback at cycle t.
func (c *ShardCtx) AtCallGlobal(t Cycle, cb Callback) { c.sched(ShardGlobal, t, event{cb: cb}) }

// sched routes one insertion. ev carries the payload; at/shard/seq are
// assigned here.
func (c *ShardCtx) sched(target ShardID, t Cycle, ev event) {
	if t < c.Now() {
		panic("sim: scheduling event in the past")
	}
	ev.at = t
	ev.shard = target
	if w := c.w; w != nil {
		if target == c.shard && t < w.barrier {
			// Same shard, same window: runs under this worker, ordered by
			// the local tie-break counter (branched from the global seq, so
			// the order matches what sequential execution would assign).
			w.seq++
			ev.seq = w.seq
			w.q.push(ev)
			return
		}
		w.staged = append(w.staged, ev)
		return
	}
	c.e.push(ev)
}

// runParallel is Run's conservative windowed dispatcher.
func (e *Engine) runParallel() Cycle {
	p := e.par
	for !e.halted && len(e.q) > 0 {
		if e.cancel != nil && e.cancel() {
			e.halted = true
			e.canceled = true
			break
		}
		barrier := e.q[0].at + p.lookahead
		if e.watch != nil || e.probe != nil || !e.windowParallel(barrier) {
			p.seqWindows++
			for !e.halted && len(e.q) > 0 && e.q[0].at < barrier {
				e.Step()
			}
			continue
		}
		p.parWindows++
		e.runWindow(barrier)
	}
	return e.now
}

// windowParallel reports whether every event below the barrier is
// shard-affine and at least two distinct shards hold work.
func (e *Engine) windowParallel(barrier Cycle) bool {
	var first ShardID
	multi := false
	for i := range e.q {
		ev := &e.q[i]
		if ev.at >= barrier {
			continue
		}
		if ev.shard == ShardGlobal {
			return false
		}
		if first == 0 {
			first = ev.shard
		} else if ev.shard != first {
			multi = true
		}
	}
	return multi
}

// runWindow executes one parallel window up to barrier.
func (e *Engine) runWindow(barrier Cycle) {
	p := e.par
	p.active = p.active[:0]
	// Drain the window's events into per-shard queues. Popping yields
	// ascending (at, seq), so each shard's slice arrives sorted — already a
	// valid heap.
	for len(e.q) > 0 && e.q[0].at < barrier {
		ev := e.q.pop()
		s := &p.states[ev.shard]
		if !s.active {
			s.active = true
			p.active = append(p.active, s)
		}
		s.q = append(s.q, ev)
	}
	start := e.now
	base := e.seq
	for _, s := range p.active {
		s.now = start
		s.barrier = barrier
		s.seq = base
		s.staged = s.staged[:0]
		s.panicv = nil
	}
	p.inWindow = true
	var wg sync.WaitGroup
	for _, s := range p.active {
		wg.Add(1)
		p.sem <- struct{}{}
		go func(s *shardState) {
			defer wg.Done()
			defer func() { <-p.sem }()
			s.run()
		}(s)
	}
	wg.Wait()
	p.inWindow = false
	// Merge in canonical order: ascending shard id; per shard, leftover
	// queue order (at, seq) first, then staged insertions in append order.
	// Each merged event gets a fresh global sequence number, so the order
	// is fully determined by the partition — goroutine scheduling never
	// leaks into it.
	maxNow := e.now
	var panicv any
	for i := 1; i <= p.shards; i++ {
		s := &p.states[i]
		if !s.active {
			continue
		}
		s.active = false
		if s.panicv != nil && panicv == nil {
			panicv = s.panicv
		}
		if s.now > maxNow {
			maxNow = s.now
		}
		for len(s.q) > 0 {
			e.push(s.q.pop())
		}
		for j := range s.staged {
			if s.staged[j].at < barrier && s.staged[j].shard != s.id {
				p.violations++
			}
			e.push(s.staged[j])
			s.staged[j] = event{}
		}
		s.staged = s.staged[:0]
	}
	e.now = maxNow
	if panicv != nil {
		// Re-raise on the dispatching goroutine so callers' recover
		// handlers (the experiments harness wraps scheme runs) see it.
		panic(panicv)
	}
}

// run executes one shard's slice of a window on a worker goroutine.
func (s *shardState) run() {
	defer func() {
		if r := recover(); r != nil {
			s.panicv = r
		}
	}()
	ctx := &s.ctx
	for len(s.q) > 0 && s.q[0].at < s.barrier {
		ev := s.q.pop()
		s.now = ev.at
		switch {
		case ev.cb != nil:
			ev.cb.Fire()
		case ev.fn != nil:
			ev.fn()
		default:
			ev.sfn(ctx)
		}
	}
}

// Fanout runs fn(0..n-1) across the engine's workers and returns when all
// calls have completed. The calls must be mutually independent — Fanout
// makes no ordering promise between them — and must not touch the engine.
// With fewer than two workers (or n < 2) the calls run inline, in order,
// on the caller's goroutine; simulation results must not depend on which
// path was taken.
//
// The timing model uses this to fan the functional rasterization of
// already-ordered draw batches across cores (multigpu.System.SubmitDraws)
// while all event scheduling stays on the dispatching goroutine.
func (e *Engine) Fanout(n int, fn func(i int)) {
	w := 1
	if e.par != nil {
		w = e.par.workers
	}
	if w > n {
		w = n
	}
	if w < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicv any
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicv == nil {
						panicv = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicv != nil {
		// Re-raise on the caller's goroutine so its recover handlers run.
		panic(panicv)
	}
}
