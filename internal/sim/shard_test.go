package sim

import (
	"fmt"
	"testing"
)

// The differential harness for the conservative parallel dispatcher: a
// synthetic node/hub model built entirely from shard-affine events, run
// once on the sequential engine and once per worker count on the parallel
// engine, comparing per-shard digests. The model is constructed so that no
// two order-sensitive events share (cycle, shard) — chain ticks live on
// even cycles, message arrivals on odd cycles with sender-unique offsets —
// and message effects accumulate commutatively, so any digest mismatch is
// an engine-ordering bug, not model noise.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// xorshift is the model's deterministic per-node random stream.
func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// chainDigest is one run's observable outcome.
type chainDigest struct {
	final Cycle
	hash  []uint64 // per shard, index 0 unused
}

func (d chainDigest) equal(o chainDigest) bool {
	if d.final != o.final || len(d.hash) != len(o.hash) {
		return false
	}
	for i := range d.hash {
		if d.hash[i] != o.hash[i] {
			return false
		}
	}
	return true
}

// runChainModel drives nodes independent event chains plus a hub shard that
// receives and relays messages at >= lookahead latency, and returns the
// digest. workers = 1 exercises the sequential dispatcher; workers > 1 the
// windowed parallel one.
func runChainModel(seed uint64, nodes, workers, steps int) (chainDigest, *Engine) {
	const look = Cycle(50) // even, so chain (even) and message (odd) cycles never meet
	e := New()
	e.ConfigureShards(nodes+1, look)
	e.SetWorkers(workers)
	hub := ShardID(nodes + 1)

	hash := make([]uint64, nodes+2)
	for i := range hash {
		hash[i] = fnvOffset
	}
	rng := make([]uint64, nodes+1)
	remaining := make([]int, nodes+1)

	// absorb folds an order-sensitive observation into a shard's digest.
	absorb := func(sh ShardID, v uint64) {
		hash[sh] = (hash[sh] ^ v) * fnvPrime
	}
	// accumulate folds a commutative observation: message arrivals may tie
	// on (cycle, shard) across senders, so their contribution must not
	// depend on intra-cycle order.
	accumulate := func(sh ShardID, v uint64) {
		hash[sh] += v * fnvPrime
	}

	// sink handlers: pure digest updates, no rescheduling.
	nodeRecv := make([]ShardFunc, nodes+1)
	for n := 1; n <= nodes; n++ {
		sh := ShardID(n)
		nodeRecv[n] = func(sc *ShardCtx) { accumulate(sh, uint64(sc.Now())*31) }
	}
	hubRecv := func(from int) ShardFunc {
		return func(sc *ShardCtx) {
			accumulate(hub, uint64(sc.Now())*uint64(from+7))
			// Relay onward to a node picked from the arrival time, again at
			// full lookahead with an odd-preserving offset.
			dst := 1 + int(uint64(sc.Now())%uint64(nodes))
			sc.AtShard(ShardID(dst), sc.Now()+look+Cycle(2*dst), nodeRecv[dst])
		}
	}

	tick := make([]ShardFunc, nodes+1)
	for n := 1; n <= nodes; n++ {
		n := n
		sh := ShardID(n)
		tick[n] = func(sc *ShardCtx) {
			r := xorshift(&rng[n])
			absorb(sh, uint64(sc.Now()))
			absorb(sh, r)
			remaining[n]--
			if remaining[n] <= 0 {
				return
			}
			if r%5 == 0 {
				// Message to the hub: arrival = now + lookahead + odd
				// sender-unique offset, so it is beyond this window's
				// barrier and never collides with a chain tick.
				sc.AtShard(hub, sc.Now()+look+Cycle(2*n+1), hubRecv(n))
			}
			// Chain ticks stay on even cycles.
			sc.After(Cycle(2*(1+r%13)), tick[n])
		}
	}
	for n := 1; n <= nodes; n++ {
		rng[n] = seed*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9
		if rng[n] == 0 {
			rng[n] = 1
		}
		remaining[n] = steps
		e.AtShardFunc(ShardID(n), Cycle(2*n), tick[n])
	}
	final := e.Run()
	return chainDigest{final: final, hash: hash}, e
}

// TestShardDifferential is the core determinism contract: the chain model
// produces byte-identical digests on the sequential engine and on the
// parallel engine at every worker count, across seeds, and the parallel
// runs actually exercised multi-shard windows without lookahead
// violations. CI runs this under -race, which makes the worker goroutines'
// memory accesses part of the assertion.
func TestShardDifferential(t *testing.T) {
	const nodes, steps = 6, 400
	for seed := uint64(1); seed <= 5; seed++ {
		ref, refEng := runChainModel(seed, nodes, 1, steps)
		if refEng.ParallelWindows() != 0 {
			t.Fatalf("seed %d: sequential run dispatched %d parallel windows", seed, refEng.ParallelWindows())
		}
		for _, workers := range []int{2, 3, 8} {
			got, eng := runChainModel(seed, nodes, workers, steps)
			if !got.equal(ref) {
				t.Errorf("seed %d workers %d: digest mismatch: final %d vs %d, hash %v vs %v",
					seed, workers, got.final, ref.final, got.hash, ref.hash)
			}
			if eng.ParallelWindows() == 0 {
				t.Errorf("seed %d workers %d: no window ran in parallel; harness is not exercising the parallel path", seed, workers)
			}
			if v := eng.LookaheadViolations(); v != 0 {
				t.Errorf("seed %d workers %d: %d lookahead violations in a conforming model", seed, workers, v)
			}
		}
	}
}

// TestGlobalEventSerializesWindow pins the determinism argument used by the
// real simulator: a window containing any ShardGlobal event is drained
// sequentially. Periodic global events therefore force every window to
// serialize while the digest stays identical.
func TestGlobalEventSerializesWindow(t *testing.T) {
	run := func(workers int) (chainDigest, *Engine) {
		const look = Cycle(50)
		e := New()
		e.ConfigureShards(3, look)
		e.SetWorkers(workers)
		hash := make([]uint64, 4)
		var globalSum uint64
		var chain func(sh ShardID, left int) ShardFunc
		chain = func(sh ShardID, left int) ShardFunc {
			return func(sc *ShardCtx) {
				hash[sh] = (hash[sh] ^ uint64(sc.Now())) * fnvPrime
				if left > 0 {
					sc.After(3, chain(sh, left-1))
				}
			}
		}
		for sh := ShardID(1); sh <= 2; sh++ {
			e.AtShardFunc(sh, Cycle(sh), chain(sh, 200))
		}
		// A global heartbeat keeps every window impure.
		var beat func()
		n := 0
		beat = func() {
			globalSum += uint64(e.Now())
			n++
			if n < 100 {
				e.After(7, beat)
			}
		}
		e.After(0, beat)
		final := e.Run()
		hash[0] = globalSum
		return chainDigest{final: final, hash: hash}, e
	}
	ref, _ := run(1)
	got, eng := run(4)
	if !got.equal(ref) {
		t.Fatalf("digest mismatch with global heartbeat: %v vs %v", got, ref)
	}
	if eng.ParallelWindows() != 0 {
		t.Fatalf("windows containing global events must serialize; got %d parallel windows", eng.ParallelWindows())
	}
	if eng.SequentialWindows() == 0 {
		t.Fatal("expected serialized windows to be counted")
	}
}

// TestLookaheadViolationCounted: a model that sends cross-shard below the
// declared lookahead is detected and still merged deterministically (the
// clock never regresses).
func TestLookaheadViolationCounted(t *testing.T) {
	e := New()
	e.ConfigureShards(2, 100)
	e.SetWorkers(2)
	fired := make([]int, 3)
	var tick func(sh ShardID, left int) ShardFunc
	tick = func(sh ShardID, left int) ShardFunc {
		return func(sc *ShardCtx) {
			fired[sh]++
			if left > 0 {
				sc.After(5, tick(sh, left-1))
			}
			if left == 10 {
				// Cross-shard at only 10 cycles: below the 100-cycle
				// lookahead, a contract breach the engine must count.
				other := ShardID(3 - sh)
				sc.AtShard(other, sc.Now()+10, func(*ShardCtx) { fired[other]++ })
			}
		}
	}
	e.AtShardFunc(1, 0, tick(1, 40))
	e.AtShardFunc(2, 1, tick(2, 40))
	e.Run()
	if e.LookaheadViolations() == 0 {
		t.Fatal("sub-lookahead cross-shard sends were not counted as violations")
	}
	if fired[1] != 42 || fired[2] != 42 {
		t.Fatalf("fired = %v, want 42 per shard (41 chain + 1 violation delivery)", fired)
	}
}

// TestEngineFacadePanicsInWindow: scheduling through the engine facade from
// a worker goroutine is a determinism bug; the engine fails loudly instead
// of racing on the global queue.
func TestEngineFacadePanicsInWindow(t *testing.T) {
	e := New()
	e.ConfigureShards(2, 50)
	e.SetWorkers(2)
	bad := func(sc *ShardCtx) { e.After(1, func() {}) }
	keep := func(sc *ShardCtx) {}
	e.AtShardFunc(1, 0, bad)
	e.AtShardFunc(2, 0, keep)
	defer func() {
		if recover() == nil {
			t.Fatal("facade scheduling inside a parallel window did not panic")
		}
	}()
	e.Run()
}

// TestShardTagsSequentialEquivalence: with workers unset (or one), tagged
// events run through the ordinary Step loop and behave exactly like
// untagged ones — the tags are inert metadata.
func TestShardTagsSequentialEquivalence(t *testing.T) {
	e := New()
	e.ConfigureShards(3, 10)
	var order []string
	e.AtOn(1, 5, func() { order = append(order, "fn@5") })
	e.AtCallOn(2, 5, fnCallback(func() { order = append(order, "cb@5") }))
	e.AtShardFunc(3, 5, func(sc *ShardCtx) {
		order = append(order, fmt.Sprintf("sfn@%d/shard%d", sc.Now(), sc.Shard()))
		sc.After(2, func(sc *ShardCtx) { order = append(order, fmt.Sprintf("child@%d", sc.Now())) })
	})
	e.At(5, func() { order = append(order, "global@5") })
	e.Run()
	want := "[fn@5 cb@5 sfn@5/shard3 global@5 child@7]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("sequential dispatch order = %s, want %s", got, want)
	}
}

type fnCallback func()

func (f fnCallback) Fire() { f() }

// TestShardValidation pins the configuration error paths.
func TestShardValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { New().ConfigureShards(0, 10) })
	mustPanic("zero lookahead", func() { New().ConfigureShards(1, 0) })
	mustPanic("negative shard", func() { New().AtOn(-1, 0, func() {}) })
	mustPanic("shard beyond count", func() {
		e := New()
		e.ConfigureShards(2, 10)
		e.AtOn(3, 0, func() {})
	})
	// Unconfigured engines accept any non-negative tag: the tags are inert.
	e := New()
	ran := false
	e.AtOn(9, 0, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("tagged event did not fire on unconfigured engine")
	}
}

// TestFanout covers the inline and worker paths of Engine.Fanout, including
// panic propagation back to the caller's goroutine.
func TestFanout(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New()
		e.SetWorkers(workers)
		const n = 64
		out := make([]int, n)
		e.Fanout(n, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*i)
			}
		}
	}
	e := New()
	e.SetWorkers(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Fanout did not propagate worker panic")
			}
		}()
		e.Fanout(8, func(i int) {
			if i == 5 {
				panic("boom")
			}
		})
	}()
}

// TestShardTagAllocs extends the 0-allocs/op contract to the shard-tagged
// scheduling paths with workers unset: parallel mode must cost the default
// configuration nothing.
func TestShardTagAllocs(t *testing.T) {
	e := New()
	e.ConfigureShards(4, 200)
	cb := &tally{}
	sfn := ShardFunc(func(sc *ShardCtx) {})
	// Warm the queue's backing array past the test loop's high-water mark
	// (512 events per run) so steady-state growth is excluded.
	for j := 0; j < 600; j++ {
		e.AtCallOn(1+ShardID(j%4), e.Now()+Cycle(j), cb)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		base := e.Now()
		for j := 0; j < 256; j++ {
			sh := 1 + ShardID(j%4)
			e.AtCallOn(sh, base+Cycle(j%37), cb)
			e.AtShardFunc(sh, base+Cycle(j%37), sfn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("sequential shard-tagged schedule/fire allocated %.1f allocs/op, want 0", allocs)
	}
}
