package sim

import (
	"sort"
	"testing"
)

// FuzzTieBreak is the satellite determinism fuzzer: arbitrary interleaved
// schedule/fire sequences — heavy on same-cycle ties — must pop in
// identical order across three implementations of the ordering contract:
//
//  1. the four-ary heap fast path (plain sequential engine),
//  2. a reference stable sort on (cycle, scheduling order),
//  3. a shard-configured engine, both fully serialized (global tags) and
//     genuinely sharded (per-shard projections of the reference order).
//
// The input bytes drive event timestamps (mod a small range to force ties),
// child fan-out, and shard assignment.
func FuzzTieBreak(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 1, 9, 1, 9, 1, 200, 3, 17, 64, 5, 5, 5})
	f.Add([]byte{255, 254, 253, 3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 4096 {
			t.Skip()
		}
		checkStaticBatch(t, data)
		checkDynamicSharded(t, data)
	})
}

// checkStaticBatch schedules one event per input byte (timestamps mod 16,
// so ~n/16 events share each cycle) on a plain engine and on a
// shard-configured engine with global tags, and compares both firing orders
// against a reference stable sort.
func checkStaticBatch(t *testing.T, data []byte) {
	type entry struct {
		at  Cycle
		idx int
	}
	ref := make([]entry, len(data))
	for i, b := range data {
		ref[i] = entry{at: Cycle(b % 16), idx: i}
	}
	sort.SliceStable(ref, func(a, b int) bool { return ref[a].at < ref[b].at })
	want := make([]int, len(ref))
	for i := range ref {
		want[i] = ref[i].idx
	}

	run := func(name string, e *Engine) {
		t.Helper()
		got := make([]int, 0, len(data))
		for i, b := range data {
			i := i
			e.At(Cycle(b%16), func() { got = append(got, i) })
		}
		e.Run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: firing order diverges from reference sort at position %d: got %v, want %v",
					name, i, got, want)
			}
		}
	}
	run("plain heap", New())
	sharded := New()
	sharded.ConfigureShards(4, 16)
	sharded.SetWorkers(4)
	// Global (untagged) events force every window to serialize, so the
	// parallel dispatcher must reproduce the sequential order exactly.
	run("sharded engine, global events", sharded)
}

// checkDynamicSharded builds a self-scheduling shard-affine model from the
// input bytes and runs it sequentially and with workers, comparing
// per-shard ordered records plus commutative cross-shard sink sums. Every
// event's behavior is a pure function of its (shard, step) identity, so
// both passes execute the same model with no shared mutable driver state.
// Chain events live on even cycles and cross-shard arrivals on odd ones,
// which keeps order-sensitive records tie-free by construction.
func checkDynamicSharded(t *testing.T, data []byte) {
	const (
		shards  = 3
		look    = Cycle(32) // even: preserves the even/odd cycle split
		maxStep = 64
	)
	run := func(workers int) (recs [][]int64, sums []uint64, eng *Engine) {
		e := New()
		e.ConfigureShards(shards, look)
		e.SetWorkers(workers)
		recs = make([][]int64, shards+1)
		sums = make([]uint64, shards+1)
		var chain func(sh ShardID, step int) ShardFunc
		chain = func(sh ShardID, step int) ShardFunc {
			return func(sc *ShardCtx) {
				recs[sh] = append(recs[sh], int64(sc.Now())<<8|int64(step&0xff))
				b := data[(int(sh)*31+step*7)%len(data)]
				if b == 0 || step >= maxStep {
					return
				}
				if b%3 == 0 {
					// Cross-shard sink at full lookahead, on an odd cycle.
					// Arrivals may tie with each other, so the sink's
					// observation is commutative.
					dst := 1 + (sh+ShardID(b/3))%shards
					id := uint64(sh)*1000 + uint64(step)
					sc.AtShard(dst, sc.Now()+look+Cycle(2*(b%5))+1, func(sc *ShardCtx) {
						sums[dst] += uint64(sc.Now()) * (id + 3)
					})
				}
				// Chain ticks stay on even cycles; deltas below lookahead
				// keep most children inside the current window.
				sc.After(Cycle(2*(1+b%8)), chain(sh, step+1))
			}
		}
		for s := ShardID(1); s <= shards; s++ {
			e.AtShardFunc(s, Cycle(2*s), chain(s, 0))
		}
		e.Run()
		return recs, sums, e
	}

	wantRecs, wantSums, _ := run(1)
	gotRecs, gotSums, eng := run(4)
	if v := eng.LookaheadViolations(); v != 0 {
		t.Fatalf("model respects lookahead but engine counted %d violations", v)
	}
	for sh := 1; sh <= shards; sh++ {
		if gotSums[sh] != wantSums[sh] {
			t.Fatalf("shard %d: cross-shard sink sum %d parallel vs %d sequential", sh, gotSums[sh], wantSums[sh])
		}
		a, b := wantRecs[sh], gotRecs[sh]
		if len(a) != len(b) {
			t.Fatalf("shard %d: fired %d chain events parallel vs %d sequential", sh, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d: chain order diverges at position %d: parallel %v, sequential %v",
					sh, i, b, a)
			}
		}
	}
}
