package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestZeroValueEngine(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("zero engine not empty at cycle 0")
	}
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
}

func TestEventOrderByTime(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %d", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-cycle events fired out of scheduling order: %v", order)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var hits []Cycle
	e.At(100, func() {
		e.After(50, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 1 || hits[0] != 150 {
		t.Errorf("hits = %v", hits)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 5 || e.Now() != 40 {
		t.Errorf("count=%d now=%d", count, e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Errorf("now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 || e.Now() != 30 {
		t.Errorf("after Run: fired=%d now=%d", fired, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("now = %d, want 500", e.Now())
	}
}

func TestPendingDrainsToZero(t *testing.T) {
	e := New()
	const n = 10_000
	fired := 0
	for i := 0; i < n; i++ {
		e.At(Cycle(i%97), func() { fired++ })
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d, want %d", e.Pending(), n)
	}
	e.Run()
	if fired != n {
		t.Errorf("fired = %d, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after Run, want 0", e.Pending())
	}
}

// TestPopReleasesEvents checks that draining the queue zeroes the backing
// array's slots, so popped closures (and their captures) become collectable
// even while the Engine itself stays alive.
func TestPopReleasesEvents(t *testing.T) {
	e := New()
	for i := 0; i < 64; i++ {
		e.At(Cycle(i), func() {})
	}
	e.Run()
	// After Run the queue's length is 0 but its backing array survives;
	// every retained slot must have been zeroed by Pop.
	for i := range e.q[:cap(e.q)] {
		s := e.q[:cap(e.q)][i]
		if s.fn != nil || s.cb != nil || s.at != 0 || s.seq != 0 {
			t.Fatalf("slot %d not zeroed after pop: %+v", i, s)
		}
	}
}

func TestWatcherSeesMonotonicTimes(t *testing.T) {
	e := New()
	var seen []Cycle
	e.SetWatcher(func(at Cycle) { seen = append(seen, at) })
	for _, c := range []Cycle{30, 10, 20, 10} {
		e.At(c, func() {})
	}
	e.Run()
	if len(seen) != 4 {
		t.Fatalf("watcher saw %d events, want 4", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("watcher times not monotonic: %v", seen)
		}
	}
	e.SetWatcher(nil)
	e.At(e.Now(), func() {})
	e.Run()
	if len(seen) != 4 {
		t.Errorf("watcher fired after removal")
	}
}

// BenchmarkSteadyState measures the allocation behaviour of a steady
// schedule/fire loop. With pop zeroing the vacated slot, the queue's backing
// array is reused and the loop settles to zero steady-state allocations,
// independent of run length.
func BenchmarkSteadyState(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// countCB is a reusable Callback that counts its firings.
type countCB struct {
	e     *Engine
	fired int
	times []Cycle
}

func (c *countCB) Fire() {
	c.fired++
	c.times = append(c.times, c.e.Now())
}

func TestCallbackInterleavesWithClosures(t *testing.T) {
	e := New()
	cb := &countCB{e: e}
	var order []string
	e.At(5, func() { order = append(order, "fn1") })
	e.AtCall(5, cb)
	e.At(5, func() { order = append(order, "fn2") })
	e.AfterCall(5, cb)
	e.Run()
	if cb.fired != 2 {
		t.Fatalf("callback fired %d times, want 2", cb.fired)
	}
	if len(cb.times) != 2 || cb.times[0] != 5 || cb.times[1] != 5 {
		t.Errorf("callback times = %v, want [5 5]", cb.times)
	}
	if len(order) != 2 || order[0] != "fn1" || order[1] != "fn2" {
		t.Errorf("closure order = %v", order)
	}
}

func TestAtCallPastPanics(t *testing.T) {
	e := New()
	cb := &countCB{e: e}
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling callback in the past")
			}
		}()
		e.AtCall(50, cb)
	})
	e.Run()
	if cb.fired != 0 {
		t.Errorf("callback fired %d times, want 0", cb.fired)
	}
}

func TestAfterCallNegativePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative callback delay")
		}
	}()
	e.AfterCall(-1, &countCB{e: e})
}

// TestDeterminism runs a randomized workload twice and checks identical
// firing order — the property every experiment depends on.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []int {
		e := New()
		r := rand.New(rand.NewSource(seed))
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(Cycle(r.Intn(50)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a := runOnce(7)
	b := runOnce(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
