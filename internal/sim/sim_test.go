package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestZeroValueEngine(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("zero engine not empty at cycle 0")
	}
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
}

func TestEventOrderByTime(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %d", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-cycle events fired out of scheduling order: %v", order)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var hits []Cycle
	e.At(100, func() {
		e.After(50, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 1 || hits[0] != 150 {
		t.Errorf("hits = %v", hits)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 5 || e.Now() != 40 {
		t.Errorf("count=%d now=%d", count, e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Errorf("now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 || e.Now() != 30 {
		t.Errorf("after Run: fired=%d now=%d", fired, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("now = %d, want 500", e.Now())
	}
}

// TestDeterminism runs a randomized workload twice and checks identical
// firing order — the property every experiment depends on.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []int {
		e := New()
		r := rand.New(rand.NewSource(seed))
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(Cycle(r.Intn(50)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a := runOnce(7)
	b := runOnce(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
