package sim

import "testing"

// BenchmarkScheduleFire measures raw event-queue throughput: push batchSize
// events at staggered times, then drain them. This is the steady-state shape
// of a simulation — the queue grows during a burst of submissions and drains
// as the clock advances.
func BenchmarkScheduleFire(b *testing.B) {
	const batch = 1024
	e := New()
	sink := 0
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			e.At(base+Cycle(j%37), fn)
		}
		e.Run()
	}
	if sink != b.N*batch {
		b.Fatalf("fired %d events, want %d", sink, b.N*batch)
	}
}

// BenchmarkScheduleFireReversed pushes timestamps in descending order — the
// worst case for sift-up — then drains.
func BenchmarkScheduleFireReversed(b *testing.B) {
	const batch = 1024
	e := New()
	sink := 0
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := batch; j > 0; j-- {
			e.At(base+Cycle(j), fn)
		}
		e.Run()
	}
	if sink != b.N*batch {
		b.Fatalf("fired %d events, want %d", sink, b.N*batch)
	}
}

// tally is a reusable counting Callback.
type tally struct{ n int }

func (t *tally) Fire() { t.n++ }

// BenchmarkScheduleFireCallback is BenchmarkScheduleFire on the AtCall fast
// path: one long-lived Callback scheduled batchSize times per iteration.
func BenchmarkScheduleFireCallback(b *testing.B) {
	const batch = 1024
	e := New()
	cb := &tally{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			e.AtCall(base+Cycle(j%37), cb)
		}
		e.Run()
	}
	if cb.n != b.N*batch {
		b.Fatalf("fired %d events, want %d", cb.n, b.N*batch)
	}
}

// BenchmarkTracerDisabled is the observability overhead contract for the
// event engine: with no probe attached, the schedule/fire hot path must not
// allocate. The CI bench job tracks allocs/op; TestTracerDisabledAllocs
// enforces the zero.
func BenchmarkTracerDisabled(b *testing.B) {
	const batch = 1024
	e := New()
	cb := &tally{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			e.AtCall(base+Cycle(j%37), cb)
		}
		e.Run()
	}
	if cb.n != b.N*batch {
		b.Fatalf("fired %d events, want %d", cb.n, b.N*batch)
	}
}

// TestTracerDisabledAllocs pins the disabled-path contract: the probe hook
// is a nil check, so an untraced engine schedules and fires without
// allocating.
func TestTracerDisabledAllocs(t *testing.T) {
	e := New()
	cb := &tally{}
	// Warm the queue's backing array so steady-state growth is excluded.
	for j := 0; j < 256; j++ {
		e.AtCall(e.Now()+Cycle(j), cb)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		base := e.Now()
		for j := 0; j < 256; j++ {
			e.AtCall(base+Cycle(j%37), cb)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("untraced schedule/fire allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkParallelEngine measures the conservative windowed dispatcher on
// the shard-affine chain model (shard_test.go): 6 node shards plus a hub,
// fanned across 4 workers. BenchmarkParallelEngineSequential is the same
// model on one worker, so the pair exposes the window dispatch overhead
// and speedup in the exported bench JSON.
func BenchmarkParallelEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, _ := runChainModel(uint64(i+1), 6, 4, 200)
		if d.final == 0 {
			b.Fatal("model did not advance")
		}
	}
}

// BenchmarkParallelEngineSequential is the one-worker baseline for
// BenchmarkParallelEngine.
func BenchmarkParallelEngineSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, _ := runChainModel(uint64(i+1), 6, 1, 200)
		if d.final == 0 {
			b.Fatal("model did not advance")
		}
	}
}

// BenchmarkSelfReschedule measures the ping-pong pattern of pipelined
// hardware models: each firing schedules the next event, so the queue stays
// tiny and every iteration exercises one push and one pop.
func BenchmarkSelfReschedule(b *testing.B) {
	e := New()
	remaining := b.N
	var fn func()
	fn = func() {
		remaining--
		if remaining > 0 {
			e.After(1, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, fn)
	e.Run()
	if remaining != 0 {
		b.Fatalf("remaining %d, want 0", remaining)
	}
}
