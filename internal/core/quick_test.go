package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chopin/internal/colorspace"
	"chopin/internal/primitive"
)

// TestQuickCompositionSchedulerConverges: for any GPU count and any order
// of readiness and session completions, the scheduler performs exactly
// n·(n−1) directed transfers, never double-books a port, and terminates.
func TestQuickCompositionSchedulerConverges(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%15
		rng := rand.New(rand.NewSource(seed))
		cs, _ := NewCompositionScheduler(n)

		readyOrder := rng.Perm(n)
		readyIdx := 0
		var inflight []Session
		transfers := map[[2]int]bool{}
		for steps := 0; !cs.Done(); steps++ {
			if steps > 10000 {
				return false // livelock
			}
			// Randomly interleave readiness events and completions.
			if readyIdx < n && (len(inflight) == 0 || rng.Intn(2) == 0) {
				cs.SetReady(readyOrder[readyIdx], 1)
				readyIdx++
			} else if len(inflight) > 0 {
				i := rng.Intn(len(inflight))
				s := inflight[i]
				inflight = append(inflight[:i], inflight[i+1:]...)
				key := [2]int{s.Sender, s.Receiver}
				if transfers[key] {
					return false // duplicate directed transfer
				}
				transfers[key] = true
				cs.Complete(s)
			}
			inflight = append(inflight, cs.NextSessions()...)
		}
		return len(transfers) == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransparentComposerConverges: any readiness order reduces to a
// single holder of the full range in exactly n−1 merges.
func TestQuickTransparentComposerConverges(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%16
		rng := rand.New(rand.NewSource(seed))
		tc := NewTransparentComposer(n)
		order := rng.Perm(n)
		idx := 0
		merges := 0
		var pending []Merge
		for steps := 0; !tc.Done(); steps++ {
			if steps > 10000 {
				return false
			}
			if idx < n && (len(pending) == 0 || rng.Intn(2) == 0) {
				tc.SetReady(order[idx])
				idx++
			} else if len(pending) > 0 {
				i := rng.Intn(len(pending))
				m := pending[i]
				pending = append(pending[:i], pending[i+1:]...)
				tc.Complete(m)
				merges++
			}
			pending = append(pending, tc.NextMerges()...)
		}
		holder, ok := tc.FinalHolder()
		return ok && holder >= 0 && merges == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDivideRangeInvariants: chunks partition any range in order.
func TestQuickDivideRangeInvariants(t *testing.T) {
	f := func(sizes []uint16, nRaw uint8) bool {
		n := 1 + int(nRaw)%12
		draws := make([]primitive.DrawCommand, len(sizes))
		for i, s := range sizes {
			draws[i] = primitive.DrawCommand{Tris: make([]primitive.Triangle, 1+int(s)%500)}
		}
		chunks, err := DivideRange(draws, 0, len(draws), n)
		if err != nil {
			return false
		}
		pos := 0
		for _, c := range chunks {
			if c[0] != pos || c[1] < c[0] {
				return false
			}
			pos = c[1]
		}
		return pos == len(draws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickReorderIsPermutation: reordering never loses, duplicates, or
// mutates a draw (modulo renumbered IDs), and never increases group count.
func TestQuickReorderIsPermutation(t *testing.T) {
	f := func(spec []uint8) bool {
		draws := make([]primitive.DrawCommand, len(spec))
		for i, b := range spec {
			d := primitive.DrawCommand{
				ID:    i,
				Tris:  make([]primitive.Triangle, 1+int(b)%40),
				State: primitive.DefaultState(),
			}
			switch b % 5 {
			case 1:
				d.State.DepthFunc = colorspace.CmpLessEqual
			case 2:
				d.State.BlendOp = colorspace.BlendOver
				d.State.DepthWrite = false
			case 3:
				d.State.RenderTarget = int(b) % 3
				d.State.DepthBuffer = d.State.RenderTarget
			case 4:
				d.State.DepthWrite = false
			}
			draws[i] = d
		}
		out := Reorder(draws)
		if len(out) != len(draws) {
			return false
		}
		// Multiset of (triangle count, state) must be preserved.
		count := map[[2]uint64]int{}
		for _, d := range draws {
			count[[2]uint64{uint64(d.TriangleCount()), stateKey(&d.State)}]++
		}
		for _, d := range out {
			count[[2]uint64{uint64(d.TriangleCount()), stateKey(&d.State)}]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		if len(draws) > 0 &&
			len(primitive.BuildGroups(out)) > len(primitive.BuildGroups(draws)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
