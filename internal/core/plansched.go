package core

import (
	"fmt"

	"chopin/internal/composite/plan"
)

// PlanScheduler drives one composition group through an exchange plan. It
// generalizes CompositionScheduler's Fig. 12 arbitration — sessions start
// only when both parties are ready and both ports are free — to multi-round
// plans: a session in round r may start only when its sender and receiver
// have both completed all their round r−1 sessions, so every merge a sender
// forwards in round r already includes everything it accumulated in earlier
// rounds.
//
// Like the hardware scheduler it models, the scan order is deterministic
// (ascending round, then the plan's session order), so identical inputs
// schedule identical session sequences.
type PlanScheduler struct {
	p         *plan.Plan
	ready     []bool
	sending   []bool
	receiving []bool
	round     []int     // per-GPU current round index (len(Rounds) = finished)
	state     [][]uint8 // state[r][i]: 0 unstarted, 1 in flight, 2 complete
	left      [][]int   // left[r][g]: g's incomplete sessions in round r
	finished  []bool
	done      int
}

// NewPlanScheduler returns a scheduler for the given plan. The plan is not
// copied; it must not be mutated while scheduled.
func NewPlanScheduler(p *plan.Plan) (*PlanScheduler, error) {
	if p == nil || p.N < 1 || p.N > 64 {
		return nil, fmt.Errorf("core: plan scheduler needs a plan for 1–64 GPUs")
	}
	ps := &PlanScheduler{
		p:         p,
		ready:     make([]bool, p.N),
		sending:   make([]bool, p.N),
		receiving: make([]bool, p.N),
		round:     make([]int, p.N),
		state:     make([][]uint8, len(p.Rounds)),
		left:      make([][]int, len(p.Rounds)),
		finished:  make([]bool, p.N),
	}
	for r, round := range p.Rounds {
		ps.state[r] = make([]uint8, len(round))
		ps.left[r] = make([]int, p.N)
		for _, s := range round {
			if s.Sender < 0 || s.Sender >= p.N || s.Receiver < 0 || s.Receiver >= p.N {
				return nil, fmt.Errorf("core: plan session %+v out of range for %d GPUs", s, p.N)
			}
			if !p.IsLive(s.Sender) || !p.IsLive(s.Receiver) {
				return nil, fmt.Errorf("core: plan session %+v touches a dead GPU", s)
			}
			ps.left[r][s.Sender]++
			ps.left[r][s.Receiver]++
		}
	}
	// Dead GPUs of a repair plan hold no sessions and never report ready:
	// finish them at construction so Done() tracks survivors only.
	for g := 0; g < p.N; g++ {
		if !p.IsLive(g) {
			ps.round[g] = len(p.Rounds)
			ps.finished[g] = true
			ps.done++
		}
	}
	return ps, nil
}

// SetReady marks GPU g's sub-image as generated; its sessions become
// eligible. GPUs with no sessions at all complete immediately.
func (ps *PlanScheduler) SetReady(g int) {
	ps.ready[g] = true
	ps.advance(g)
}

// Round returns GPU g's current round index (len(plan.Rounds) once g has
// finished every round).
func (ps *PlanScheduler) Round(g int) int { return ps.round[g] }

// advance moves g past rounds in which it has no remaining sessions and
// records completion when it runs out of rounds.
func (ps *PlanScheduler) advance(g int) {
	for ps.round[g] < len(ps.p.Rounds) && ps.left[ps.round[g]][g] == 0 {
		ps.round[g]++
	}
	if ps.round[g] == len(ps.p.Rounds) && !ps.finished[g] {
		ps.finished[g] = true
		ps.done++
	}
}

// NextSessions greedily starts every session that may begin now, marking
// the chosen ports busy. A session is startable when it is unstarted, both
// parties are ready and sit in its round, the sender's egress is free, and
// the receiver's ingress is free.
func (ps *PlanScheduler) NextSessions() []plan.Session {
	var out []plan.Session
	for r, round := range ps.p.Rounds {
		for i, s := range round {
			if ps.state[r][i] != 0 {
				continue
			}
			if ps.round[s.Sender] != r || ps.round[s.Receiver] != r {
				continue
			}
			if !ps.ready[s.Sender] || !ps.ready[s.Receiver] {
				continue
			}
			if ps.sending[s.Sender] || ps.receiving[s.Receiver] {
				continue
			}
			ps.state[r][i] = 1
			ps.sending[s.Sender] = true
			ps.receiving[s.Receiver] = true
			out = append(out, s)
		}
	}
	return out
}

// Complete records that the session finished (its pixels are merged at the
// receiver): ports free, round bookkeeping updates, and either party that
// drained its round advances. Completing a session that was never scheduled
// is a caller bug and returns an error.
func (ps *PlanScheduler) Complete(s plan.Session) error {
	r := ps.round[s.Sender]
	if r >= len(ps.p.Rounds) {
		return fmt.Errorf("core: completing session %+v for a finished sender", s)
	}
	for i, cand := range ps.p.Rounds[r] {
		if cand.Sender != s.Sender || cand.Receiver != s.Receiver || ps.state[r][i] != 1 {
			continue
		}
		ps.state[r][i] = 2
		ps.sending[s.Sender] = false
		ps.receiving[s.Receiver] = false
		ps.left[r][s.Sender]--
		ps.left[r][s.Receiver]--
		ps.advance(s.Sender)
		ps.advance(s.Receiver)
		return nil
	}
	return fmt.Errorf("core: completing unscheduled plan session %+v", s)
}

// Done reports whether every GPU has completed every round.
func (ps *PlanScheduler) Done() bool { return ps.done == ps.p.N }

// CompletedRounds returns the number of leading rounds every live GPU has
// fully completed — the checkpoint a plan repair restarts from.
func (ps *PlanScheduler) CompletedRounds() int {
	min := len(ps.p.Rounds)
	for g := 0; g < ps.p.N; g++ {
		if !ps.p.IsLive(g) {
			continue
		}
		if ps.round[g] < min {
			min = ps.round[g]
		}
	}
	return min
}

// PendingSessions counts sessions not yet completed, for watchdog
// diagnostics.
func (ps *PlanScheduler) PendingSessions() int {
	n := 0
	for r := range ps.state {
		for _, st := range ps.state[r] {
			if st != 2 {
				n++
			}
		}
	}
	return n
}

// ReadyBits returns a bitmask of GPUs whose sub-images have been marked
// ready.
func (ps *PlanScheduler) ReadyBits() uint64 {
	var b uint64
	for g, ok := range ps.ready {
		if ok {
			b |= 1 << uint(g)
		}
	}
	return b
}

// Rounds returns the plan's round count.
func (ps *PlanScheduler) Rounds() int { return len(ps.p.Rounds) }
