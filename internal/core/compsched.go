package core

import "fmt"

// Entry is one GPU's row in the image-composition scheduler table, with
// exactly the fields of the paper's Table I.
type Entry struct {
	// CGID is the composition group ID the GPU is currently in.
	CGID int
	// Ready is set when the GPU has generated its sub-image and can compose.
	Ready bool
	// Receiving is set while the GPU is receiving pixels from another GPU.
	Receiving bool
	// Sending is set while the GPU is sending pixels to another GPU.
	Sending bool
	// SentGPUs is the bit vector of GPUs this GPU's sub-image has been sent
	// to.
	SentGPUs uint64
	// ReceivedGPUs is the bit vector of GPUs this GPU has composed with.
	ReceivedGPUs uint64
}

// Session is a scheduled directed sub-image transfer.
type Session struct {
	// Sender transmits the screen region owned by Receiver.
	Sender, Receiver int
}

// CompositionScheduler is the centralized image-composition scheduler of
// paper Section IV-E (Figs. 11–12). It tracks each GPU's composition status
// and starts a transfer between two GPUs only when both are ready and
// neither port is busy, avoiding the network congestion of naive
// direct-send.
//
// For an opaque group the exchange is complete when every GPU has sent its
// sub-image region to every other GPU and received from every other GPU
// (n·(n−1) directed transfers).
type CompositionScheduler struct {
	n       int
	entries []Entry
	done    int // GPUs that completed their exchange this group
}

// NewCompositionScheduler returns a scheduler for n GPUs (n ≤ 64, the bit
// vector width).
func NewCompositionScheduler(n int) (*CompositionScheduler, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("core: composition scheduler supports 1–64 GPUs, got %d", n)
	}
	return &CompositionScheduler{n: n, entries: make([]Entry, n)}, nil
}

// Entry returns GPU g's table row (a copy).
func (cs *CompositionScheduler) Entry(g int) Entry { return cs.entries[g] }

// SetReady marks GPU g ready to compose in group cgid (workflow step Ê of
// Fig. 12: set Ready, increment CGID).
func (cs *CompositionScheduler) SetReady(g, cgid int) {
	e := &cs.entries[g]
	e.CGID = cgid
	e.Ready = true
	e.Receiving = false
	e.Sending = false
	e.SentGPUs = 0
	e.ReceivedGPUs = 0
}

// canStart reports whether sender s may start transferring to receiver r:
// both ready in the same group, s's egress and r's ingress free, and the
// pair not yet composed in this direction (Fig. 12 conditions).
func (cs *CompositionScheduler) canStart(s, r int) bool {
	if s == r {
		return false
	}
	es, er := &cs.entries[s], &cs.entries[r]
	return es.Ready && er.Ready &&
		es.CGID == er.CGID &&
		!es.Sending && !er.Receiving &&
		es.SentGPUs&(1<<uint(r)) == 0
}

// NextSessions greedily schedules all transfers that may start now, marking
// the chosen GPUs busy. The scan order is deterministic (ascending sender,
// then receiver), modelling a fixed-priority hardware arbiter.
func (cs *CompositionScheduler) NextSessions() []Session {
	var out []Session
	for s := 0; s < cs.n; s++ {
		if cs.entries[s].Sending || !cs.entries[s].Ready {
			continue
		}
		for r := 0; r < cs.n; r++ {
			if cs.canStart(s, r) {
				cs.entries[s].Sending = true
				cs.entries[r].Receiving = true
				out = append(out, Session{Sender: s, Receiver: r})
				break
			}
		}
	}
	return out
}

// Complete records that the session finished (Fig. 12 step Î): flags clear,
// bit vectors update, and fully exchanged entries reset (step Ï). Completing
// a session that was never scheduled is a caller bug and returns an error.
func (cs *CompositionScheduler) Complete(s Session) error {
	es, er := &cs.entries[s.Sender], &cs.entries[s.Receiver]
	if !es.Sending || !er.Receiving {
		return fmt.Errorf("core: completing unscheduled session %+v", s)
	}
	es.Sending = false
	er.Receiving = false
	es.SentGPUs |= 1 << uint(s.Receiver)
	er.ReceivedGPUs |= 1 << uint(s.Sender)

	full := (uint64(1)<<uint(cs.n) - 1)
	for _, g := range []int{s.Sender, s.Receiver} {
		e := &cs.entries[g]
		if e.SentGPUs|1<<uint(g) == full && e.ReceivedGPUs|1<<uint(g) == full {
			// This GPU has exchanged with everyone: reset its entry.
			e.Ready = false
			cs.done++
		}
	}
	return nil
}

// Done reports whether every GPU has completed its exchange for the current
// group.
func (cs *CompositionScheduler) Done() bool { return cs.done == cs.n }

// Reset prepares the scheduler for the next composition group.
func (cs *CompositionScheduler) Reset() {
	cs.done = 0
	for i := range cs.entries {
		cs.entries[i] = Entry{CGID: cs.entries[i].CGID}
	}
}

// Merge is a scheduled transparent sub-image merge: From's accumulated
// layer is sent to To, who blends it with its own (From is in front when
// From's range follows To's).
type Merge struct {
	From, To int
}

// TransparentComposer tracks the asynchronous adjacent merging of
// transparent sub-images (Section IV-C step Î, Section IV-E step Ë). GPU i
// initially holds layer range [i, i]; only holders of adjacent ranges may
// merge, and the lower (farther-back) holder accumulates the result —
// associativity makes any merge order equivalent.
type TransparentComposer struct {
	n     int
	lo    []int // lo[g], hi[g]: the draw-order range GPU g holds (-1 = none)
	hi    []int
	ready []bool
	busy  []bool
}

// NewTransparentComposer returns a composer for n GPUs.
func NewTransparentComposer(n int) *TransparentComposer {
	tc := &TransparentComposer{
		n:     n,
		lo:    make([]int, n),
		hi:    make([]int, n),
		ready: make([]bool, n),
		busy:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		tc.lo[i], tc.hi[i] = i, i
	}
	return tc
}

// SetReady marks GPU g's sub-image as generated.
func (tc *TransparentComposer) SetReady(g int) { tc.ready[g] = true }

// Holds returns the range GPU g currently holds, or ok=false if it has
// merged away.
func (tc *TransparentComposer) Holds(g int) (lo, hi int, ok bool) {
	if tc.lo[g] < 0 {
		return 0, 0, false
	}
	return tc.lo[g], tc.hi[g], true
}

// NextMerges schedules all adjacent merges possible now, marking both
// parties busy. The front (higher-range) holder sends to the back holder.
func (tc *TransparentComposer) NextMerges() []Merge {
	var out []Merge
	for back := 0; back < tc.n; back++ {
		if tc.lo[back] < 0 || !tc.ready[back] || tc.busy[back] {
			continue
		}
		// Find the holder whose range starts right after back's.
		want := tc.hi[back] + 1
		for front := 0; front < tc.n; front++ {
			if front == back || tc.lo[front] != want {
				continue
			}
			if tc.ready[front] && !tc.busy[front] {
				tc.busy[back] = true
				tc.busy[front] = true
				out = append(out, Merge{From: front, To: back})
			}
			break
		}
	}
	return out
}

// Complete records a finished merge: the back holder absorbs the front
// holder's range; the front holder leaves the composition. Completing a
// merge that was never scheduled is a caller bug and returns an error.
func (tc *TransparentComposer) Complete(m Merge) error {
	if !tc.busy[m.From] || !tc.busy[m.To] {
		return fmt.Errorf("core: completing unscheduled merge %+v", m)
	}
	tc.busy[m.From] = false
	tc.busy[m.To] = false
	tc.hi[m.To] = tc.hi[m.From]
	tc.lo[m.From], tc.hi[m.From] = -1, -1
	tc.ready[m.From] = false
	return nil
}

// Done reports whether a single holder owns the full range.
func (tc *TransparentComposer) Done() bool {
	holder, ok := tc.FinalHolder()
	return ok && tc.lo[holder] == 0 && tc.hi[holder] == tc.n-1 && !tc.busy[holder]
}

// FinalHolder returns the single remaining holder once composition is down
// to one range.
func (tc *TransparentComposer) FinalHolder() (int, bool) {
	found := -1
	for g := 0; g < tc.n; g++ {
		if tc.lo[g] >= 0 {
			if found >= 0 {
				return -1, false
			}
			found = g
		}
	}
	return found, found >= 0
}
