// Package core implements the paper's primary contribution: the CHOPIN
// split-frame-rendering architecture (Section IV).
//
// CHOPIN distributes whole draw commands across GPUs — eliminating the
// redundant per-GPU geometry processing of conventional SFR — and composes
// the resulting sub-images in parallel, exploiting two properties of image
// composition (Section II-D):
//
//   - opaque sub-images compose out-of-order (depth comparison is
//     commutative and associative), and
//   - transparent sub-images compose associatively, so adjacent sub-images
//     in draw order can merge asynchronously.
//
// The package provides the three hardware mechanisms of Section IV:
//
//   - [LeastLoadedScheduler], the draw-command scheduler of Fig. 10, which
//     tracks scheduled and processed triangle counts per GPU and assigns
//     each draw to the GPU with the fewest remaining triangles;
//   - [CompositionScheduler], the image-composition scheduler of Table I
//     and Figs. 11–12, which pairs up ready GPUs so sub-image exchange
//     never congests the fabric; and
//   - [TransparentComposer], the adjacent-merge tracker for transparent
//     groups.
//
// The composition-group software layer (the CompGroupStart/CompGroupEnd API
// of Section IV-A) is implemented by [Plan] on top of the group builder in
// package primitive.
package core

import (
	"fmt"

	"chopin/internal/gpu"
	"chopin/internal/primitive"
	"chopin/internal/sim"
)

// DrawScheduler decides which GPU executes a draw command.
type DrawScheduler interface {
	// Assign returns the GPU for a draw of the given triangle count at the
	// given time, updating any internal bookkeeping.
	Assign(tris int, now sim.Cycle) int
	// Name identifies the scheduler in reports.
	Name() string
}

// RoundRobinScheduler distributes draws cyclically, the naive baseline of
// paper Fig. 8.
type RoundRobinScheduler struct {
	n, next int
}

// NewRoundRobin returns a round-robin scheduler over n GPUs.
func NewRoundRobin(n int) *RoundRobinScheduler { return &RoundRobinScheduler{n: n} }

// Assign returns GPUs 0, 1, ..., n-1, 0, ... in turn.
func (s *RoundRobinScheduler) Assign(tris int, now sim.Cycle) int {
	g := s.next
	s.next = (s.next + 1) % s.n
	return g
}

// Name implements DrawScheduler.
func (s *RoundRobinScheduler) Name() string { return "round-robin" }

// LeastLoadedScheduler is the draw-command scheduler of paper Fig. 10: a
// table with, per GPU, the number of scheduled and processed triangles in
// the geometry stage; each draw goes to the GPU with the fewest remaining
// triangles.
//
// Processed counts are read from the GPUs quantized to UpdateInterval
// triangles and delayed by the link latency, modelling the periodic
// hardware status updates of Section VI-D (swept in Fig. 18).
type LeastLoadedScheduler struct {
	gpus []*gpu.GPU
	// UpdateInterval is the status-update granularity in triangles.
	UpdateInterval int
	// UpdateLatency is the staleness of processed counts.
	UpdateLatency sim.Cycle

	scheduled []int64
}

// NewLeastLoaded returns the Fig. 10 scheduler over the given GPUs.
func NewLeastLoaded(gpus []*gpu.GPU, updateInterval int, updateLatency sim.Cycle) *LeastLoadedScheduler {
	if updateInterval < 1 {
		updateInterval = 1
	}
	return &LeastLoadedScheduler{
		gpus:           gpus,
		UpdateInterval: updateInterval,
		UpdateLatency:  updateLatency,
		scheduled:      make([]int64, len(gpus)),
	}
}

// Remaining returns the scheduler's current estimate of GPU g's remaining
// geometry triangles.
func (s *LeastLoadedScheduler) Remaining(g int, now sim.Cycle) int64 {
	at := now - s.UpdateLatency
	if at < 0 {
		at = 0
	}
	processed := int64(s.gpus[g].ProcessedTriangles(at, s.UpdateInterval))
	rem := s.scheduled[g] - processed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Assign picks the GPU with the fewest remaining triangles (lowest ID wins
// ties) and adds the draw's triangles to its scheduled count.
func (s *LeastLoadedScheduler) Assign(tris int, now sim.Cycle) int {
	best, bestRem := 0, int64(-1)
	for g := range s.gpus {
		rem := s.Remaining(g, now)
		if bestRem < 0 || rem < bestRem {
			best, bestRem = g, rem
		}
	}
	s.scheduled[best] += int64(tris)
	return best
}

// NoteDuplicated records triangles submitted to every GPU outside the
// scheduler's control (duplicated small groups), keeping the scheduled
// counts consistent with the GPUs' own accounting.
func (s *LeastLoadedScheduler) NoteDuplicated(tris int) {
	for g := range s.scheduled {
		s.scheduled[g] += int64(tris)
	}
}

// NoteAssigned records triangles placed on GPU g outside the scheduler's
// control (the contiguous transparent-group chunks of Section IV-C).
func (s *LeastLoadedScheduler) NoteAssigned(g, tris int) {
	s.scheduled[g] += int64(tris)
}

// Name implements DrawScheduler.
func (s *LeastLoadedScheduler) Name() string { return "least-loaded" }

// UpdateTrafficBytes returns the draw-scheduler status-update traffic for a
// frame of the given triangle count at the given update interval, with
// 4-byte messages (Section VI-D).
func UpdateTrafficBytes(triangles, updateInterval int) int64 {
	if updateInterval < 1 {
		updateInterval = 1
	}
	return int64(triangles/updateInterval) * 4
}

// HardwareCost reports the storage the two schedulers need for an n-GPU
// system (Section VI-F).
type HardwareCost struct {
	// DrawSchedulerBytes is the draw-command scheduler table: per GPU, two
	// 64-bit triangle counters.
	DrawSchedulerBytes int
	// CompSchedulerBytes is the composition scheduler table: per GPU, a
	// 1-byte CGID, three 1-bit flags, and two n-bit GPU vectors.
	CompSchedulerBytes int
}

// Cost returns the hardware cost for an n-GPU system. For n=8 it reproduces
// the paper's 128-byte and 27-byte figures.
func Cost(n int) HardwareCost {
	vecBytes := (n + 7) / 8
	flagBits := 3 * n
	return HardwareCost{
		DrawSchedulerBytes: n * 2 * 8,
		CompSchedulerBytes: n*(1+2*vecBytes) + (flagBits+7)/8,
	}
}

// Step is one composition group in a frame plan, annotated with the
// workflow decision of Fig. 7.
type Step struct {
	Group primitive.Group
	// Duplicate is true when the group is under the primitive threshold and
	// reverts to conventional duplicated rendering.
	Duplicate bool
}

// Plan splits a frame's draw stream into composition groups and applies the
// Fig. 7 threshold check. It is the software-layer work CompGroupStart and
// CompGroupEnd delimit.
func Plan(draws []primitive.DrawCommand, threshold int) []Step {
	groups := primitive.BuildGroups(draws)
	steps := make([]Step, len(groups))
	for i, g := range groups {
		steps[i] = Step{Group: g, Duplicate: g.Triangles < threshold}
	}
	return steps
}

// PlanStats summarises a plan (Section VI-E).
type PlanStats struct {
	Groups            int
	Accelerated       int
	TrianglesTotal    int
	TrianglesAccel    int
	TransparentGroups int
}

// Summarize computes plan statistics.
func Summarize(steps []Step) PlanStats {
	var s PlanStats
	s.Groups = len(steps)
	for _, st := range steps {
		s.TrianglesTotal += st.Group.Triangles
		if !st.Duplicate {
			s.Accelerated++
			s.TrianglesAccel += st.Group.Triangles
		}
		if st.Group.Transparent {
			s.TransparentGroups++
		}
	}
	return s
}

// DivideRange splits draws [start, end) into n contiguous chunks of
// near-equal triangle counts, preserving order — the transparent-group
// distribution of Section IV-C ("evenly divide draws, send consecutive
// draws to the same GPU"). Chunk i may be empty when there are fewer draws
// than GPUs. An out-of-bounds range is a caller bug and returns an error.
func DivideRange(draws []primitive.DrawCommand, start, end, n int) ([][2]int, error) {
	if start < 0 || end > len(draws) || start > end {
		return nil, fmt.Errorf("core: bad range [%d,%d) of %d draws", start, end, len(draws))
	}
	total := 0
	for i := start; i < end; i++ {
		total += draws[i].TriangleCount()
	}
	chunks := make([][2]int, n)
	pos := start
	acc := 0
	for c := 0; c < n; c++ {
		target := total * (c + 1) / n
		lo := pos
		for pos < end && acc < target {
			acc += draws[pos].TriangleCount()
			pos++
		}
		chunks[c] = [2]int{lo, pos}
	}
	chunks[n-1][1] = end
	return chunks, nil
}
