package core

import (
	"math"
	"testing"
)

// driveFullExchange runs a full all-pairs exchange through the composition
// scheduler and returns the number of completed transfers.
func driveFullExchange(t *testing.T, cs *CompositionScheduler, n int) int {
	t.Helper()
	for g := 0; g < n; g++ {
		cs.SetReady(g, 1)
	}
	transfers := 0
	var inflight []Session
	for rounds := 0; !cs.Done(); rounds++ {
		if rounds > 4*n*n {
			t.Fatalf("exchange did not converge after %d transfers", transfers)
		}
		inflight = append(inflight, cs.NextSessions()...)
		if len(inflight) == 0 {
			t.Fatalf("deadlock: nothing in flight after %d transfers", transfers)
		}
		s := inflight[0]
		inflight = inflight[1:]
		if err := cs.Complete(s); err != nil {
			t.Fatal(err)
		}
		transfers++
	}
	return transfers
}

// TestNewCompositionSchedulerBounds pins the constructor's domain: the
// Table I bit vectors are 64 bits wide, so 1–64 GPUs are accepted and
// everything outside errors.
func TestNewCompositionSchedulerBounds(t *testing.T) {
	for _, n := range []int{-1, 0, 65, 128} {
		if _, err := NewCompositionScheduler(n); err == nil {
			t.Errorf("NewCompositionScheduler(%d): want error", n)
		}
	}
	for _, n := range []int{1, 33, 64} {
		if _, err := NewCompositionScheduler(n); err != nil {
			t.Errorf("NewCompositionScheduler(%d): %v", n, err)
		}
	}
}

// TestCompositionSchedulerExchange33 crosses the 32-bit boundary: with 33
// GPUs the status bit vectors need the high word, and the exchange must
// still complete with exactly n·(n−1) transfers and fully populated
// SentGPUs/ReceivedGPUs rows.
func TestCompositionSchedulerExchange33(t *testing.T) {
	const n = 33
	cs, err := NewCompositionScheduler(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := driveFullExchange(t, cs, n); got != n*(n-1) {
		t.Errorf("transfers = %d, want %d", got, n*(n-1))
	}
	full := uint64(1)<<n - 1
	for g := 0; g < n; g++ {
		e := cs.Entry(g)
		want := full &^ (1 << uint(g))
		if e.SentGPUs != want {
			t.Errorf("GPU %d SentGPUs = %#x, want %#x", g, e.SentGPUs, want)
		}
		if e.ReceivedGPUs != want {
			t.Errorf("GPU %d ReceivedGPUs = %#x, want %#x", g, e.ReceivedGPUs, want)
		}
	}
}

// TestCompositionSchedulerExchange64 saturates the bit vectors: at the
// 64-GPU limit the full mask is all ones (the 1<<64 wrap must not truncate
// it) and every row ends with all bits but its own set.
func TestCompositionSchedulerExchange64(t *testing.T) {
	const n = 64
	cs, err := NewCompositionScheduler(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := driveFullExchange(t, cs, n); got != n*(n-1) {
		t.Errorf("transfers = %d, want %d", got, n*(n-1))
	}
	for g := 0; g < n; g++ {
		e := cs.Entry(g)
		want := uint64(math.MaxUint64) &^ (1 << uint(g))
		if e.SentGPUs != want {
			t.Errorf("GPU %d SentGPUs = %#x, want %#x", g, e.SentGPUs, want)
		}
		if e.ReceivedGPUs != want {
			t.Errorf("GPU %d ReceivedGPUs = %#x, want %#x", g, e.ReceivedGPUs, want)
		}
	}
}
