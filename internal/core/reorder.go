package core

import (
	"sort"

	"chopin/internal/primitive"
)

// Reorder implements the draw-command reordering the paper sketches as a
// group-enlarging extension (Section IV-A: "more sophisticated mechanisms
// could potentially reorder draw commands to create larger composition
// groups at the cost of additional complexity").
//
// Only reorderings that provably preserve the final image are performed:
//
//   - The stream is first split at hard barriers: render-target/depth-buffer
//     switches (Event 2) and the opaque→transparent frontier. Draws never
//     cross a barrier.
//   - Within a barrier-delimited window, OPAQUE depth-writing draws are
//     stably grouped by identical render state. Two opaque draws with
//     depth-test less/less-equal and depth writes commute: the depth test
//     resolves every pixel to the nearest fragment regardless of submission
//     order (ties are the only exception, and tie depths require exactly
//     coincident geometry).
//   - Transparent draws and opaque draws with depth writes disabled are
//     order-sensitive and are never moved relative to each other.
//
// The result is a stream with fewer, larger composition groups, which gives
// CHOPIN more parallel-composition opportunities per frame.
func Reorder(draws []primitive.DrawCommand) []primitive.DrawCommand {
	out := make([]primitive.DrawCommand, 0, len(draws))
	window := make([]primitive.DrawCommand, 0, len(draws))

	flush := func() {
		if len(window) == 0 {
			return
		}
		// Stable sort by state key: identical states become adjacent, and
		// the original order inside each state class is preserved.
		sort.SliceStable(window, func(i, j int) bool {
			return stateKey(&window[i].State) < stateKey(&window[j].State)
		})
		out = append(out, window...)
		window = window[:0]
	}

	movable := func(d *primitive.DrawCommand) bool {
		return !d.Transparent() && d.State.DepthWrite
	}

	for i := range draws {
		d := draws[i]
		if !movable(&d) {
			// Order-sensitive draw: flush the window and emit in place.
			flush()
			out = append(out, d)
			continue
		}
		if len(window) > 0 {
			prev := &window[len(window)-1]
			if prev.State.RenderTarget != d.State.RenderTarget ||
				prev.State.DepthBuffer != d.State.DepthBuffer {
				flush() // Event-2 barrier
			}
		}
		window = append(window, d)
	}
	flush()

	// Re-number to the new stream order.
	for i := range out {
		out[i].ID = i
	}
	return out
}

// stateKey produces a comparable grouping key for a render state.
func stateKey(s *primitive.RenderState) uint64 {
	key := uint64(s.RenderTarget)<<32 | uint64(s.DepthBuffer)<<16
	key |= uint64(s.DepthFunc) << 8
	key |= uint64(s.BlendOp) << 4
	if s.DepthWrite {
		key |= 1
	}
	return key
}
