package core

import (
	"math/rand"
	"testing"

	"chopin/internal/colorspace"
	"chopin/internal/gpu"
	"chopin/internal/primitive"
	"chopin/internal/raster"
	"chopin/internal/sim"
	"chopin/internal/vecmath"
)

func draw(tris int) primitive.DrawCommand {
	return primitive.DrawCommand{
		Tris:  make([]primitive.Triangle, tris),
		Model: vecmath.Identity(),
		State: primitive.DefaultState(),
	}
}

func TestRoundRobin(t *testing.T) {
	s := NewRoundRobin(3)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, s.Assign(10, 0))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignments = %v", got)
		}
	}
	if s.Name() == "" {
		t.Error("scheduler must have a name")
	}
}

// mkGPUs builds n idle GPUs on a shared engine.
func mkGPUs(n int) (*sim.Engine, []*gpu.GPU) {
	eng := sim.New()
	gpus := make([]*gpu.GPU, n)
	for i := range gpus {
		gp, err := gpu.New(i, eng, gpu.DefaultCosts(), 128, 128, raster.DefaultConfig())
		if err != nil {
			panic(err)
		}
		gpus[i] = gp
	}
	return eng, gpus
}

func TestLeastLoadedBalancesStatic(t *testing.T) {
	_, gpus := mkGPUs(4)
	s := NewLeastLoaded(gpus, 1, 0)
	// With no execution progress, assignment is greedy by scheduled count.
	loads := make([]int64, 4)
	sizes := []int{100, 50, 50, 10, 10, 10, 10, 200}
	for _, sz := range sizes {
		g := s.Assign(sz, 0)
		loads[g] += int64(sz)
	}
	// Greedy: 100→0, 50→1, 50→2, 10→3 ×4? (3 has 10, then mins...) just
	// check balance: max-min spread far below a single-GPU pileup.
	var mn, mx int64 = 1 << 60, 0
	for _, l := range loads {
		if l < mn {
			mn = l
		}
		if l > mx {
			mx = l
		}
	}
	if mx-mn > 200 {
		t.Errorf("loads unbalanced: %v", loads)
	}
}

func TestLeastLoadedUsesProgress(t *testing.T) {
	eng, gpus := mkGPUs(2)
	s := NewLeastLoaded(gpus, 1, 0)
	// GPU0 is assigned a large draw.
	g := s.Assign(1000, 0)
	if g != 0 {
		t.Fatalf("first assignment to %d", g)
	}
	// Before any processing, the next draw goes to GPU1.
	if g := s.Assign(10, 0); g != 1 {
		t.Fatalf("second assignment to %d", g)
	}
	_ = eng
	// Remaining accounting matches.
	if rem := s.Remaining(0, 0); rem != 1000 {
		t.Errorf("Remaining(0) = %d", rem)
	}
	if rem := s.Remaining(1, 0); rem != 10 {
		t.Errorf("Remaining(1) = %d", rem)
	}
}

func TestLeastLoadedNoteDuplicated(t *testing.T) {
	_, gpus := mkGPUs(2)
	s := NewLeastLoaded(gpus, 1, 0)
	s.NoteDuplicated(500)
	if s.Remaining(0, 0) != 500 || s.Remaining(1, 0) != 500 {
		t.Errorf("remaining after duplication: %d %d", s.Remaining(0, 0), s.Remaining(1, 0))
	}
}

func TestUpdateTrafficBytes(t *testing.T) {
	// Section VI-D: 4 KB for 1 M triangles at 1024-triangle intervals.
	if got := UpdateTrafficBytes(1_000_000, 1024); got != 4*976 {
		t.Errorf("1M tris @1024 = %d bytes", got)
	}
	if got := UpdateTrafficBytes(1_000_000_000, 1024); got != 4*976562 {
		t.Errorf("1B tris @1024 = %d bytes", got)
	}
	if got := UpdateTrafficBytes(100, 0); got != 400 {
		t.Errorf("interval 0 should clamp to 1: %d", got)
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	c := Cost(8)
	// Section VI-F: 128 bytes for the draw scheduler, 27 bytes for the
	// composition scheduler in an 8-GPU system.
	if c.DrawSchedulerBytes != 128 {
		t.Errorf("draw scheduler = %d bytes, want 128", c.DrawSchedulerBytes)
	}
	if c.CompSchedulerBytes != 27 {
		t.Errorf("composition scheduler = %d bytes, want 27", c.CompSchedulerBytes)
	}
}

func TestPlanThreshold(t *testing.T) {
	draws := []primitive.DrawCommand{draw(10), draw(10), draw(5000)}
	draws[2].State.DepthFunc = colorspace.CmpLessEqual // boundary before it
	steps := Plan(draws, 4096)
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if !steps[0].Duplicate {
		t.Error("small group should revert to duplication")
	}
	if steps[1].Duplicate {
		t.Error("large group should be accelerated")
	}
	st := Summarize(steps)
	if st.Groups != 2 || st.Accelerated != 1 || st.TrianglesAccel != 5000 || st.TrianglesTotal != 5020 {
		t.Errorf("summary = %+v", st)
	}
}

func TestDivideRangePreservesOrderAndBalance(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(8)
		count := r.Intn(40)
		draws := make([]primitive.DrawCommand, count)
		total := 0
		for i := range draws {
			draws[i] = draw(1 + r.Intn(50))
			total += draws[i].TriangleCount()
		}
		chunks, err := DivideRange(draws, 0, count, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != n {
			t.Fatalf("chunks = %d, want %d", len(chunks), n)
		}
		pos := 0
		for _, c := range chunks {
			if c[0] != pos {
				t.Fatalf("chunk start %d, want %d (chunks %v)", c[0], pos, chunks)
			}
			if c[1] < c[0] {
				t.Fatalf("negative chunk %v", c)
			}
			pos = c[1]
		}
		if pos != count {
			t.Fatalf("chunks end at %d, want %d", pos, count)
		}
		// Balance: no chunk exceeds 2×(total/n) + the largest draw.
		if count >= n && n > 1 {
			maxDraw := 0
			for i := range draws {
				if draws[i].TriangleCount() > maxDraw {
					maxDraw = draws[i].TriangleCount()
				}
			}
			for _, c := range chunks {
				sum := 0
				for i := c[0]; i < c[1]; i++ {
					sum += draws[i].TriangleCount()
				}
				if sum > 2*total/n+maxDraw {
					t.Fatalf("chunk %v holds %d of %d triangles", c, sum, total)
				}
			}
		}
	}
}

func TestCompositionSchedulerFullExchange(t *testing.T) {
	const n = 4
	cs, _ := NewCompositionScheduler(n)
	for g := 0; g < n; g++ {
		cs.SetReady(g, 1)
	}
	transfers := map[[2]int]bool{}
	rounds := 0
	var inflight []Session
	for !cs.Done() {
		rounds++
		if rounds > 100 {
			t.Fatal("composition did not converge")
		}
		sessions := cs.NextSessions()
		if len(sessions) == 0 && len(inflight) == 0 {
			t.Fatalf("deadlock: no sessions and nothing in flight (transfers=%d)", len(transfers))
		}
		inflight = append(inflight, sessions...)
		// Complete one in-flight session per iteration, in order.
		s := inflight[0]
		inflight = inflight[1:]
		key := [2]int{s.Sender, s.Receiver}
		if transfers[key] {
			t.Fatalf("duplicate transfer %v", key)
		}
		transfers[key] = true
		cs.Complete(s)
	}
	if len(transfers) != n*(n-1) {
		t.Errorf("transfers = %d, want %d", len(transfers), n*(n-1))
	}
}

func TestCompositionSchedulerPortExclusivity(t *testing.T) {
	cs, _ := NewCompositionScheduler(4)
	for g := 0; g < 4; g++ {
		cs.SetReady(g, 1)
	}
	sessions := cs.NextSessions()
	sendBusy := map[int]bool{}
	recvBusy := map[int]bool{}
	for _, s := range sessions {
		if sendBusy[s.Sender] {
			t.Errorf("sender %d double-booked", s.Sender)
		}
		if recvBusy[s.Receiver] {
			t.Errorf("receiver %d double-booked", s.Receiver)
		}
		sendBusy[s.Sender] = true
		recvBusy[s.Receiver] = true
	}
	if len(sessions) == 0 {
		t.Fatal("no sessions scheduled among 4 ready GPUs")
	}
}

func TestCompositionSchedulerRespectsReadiness(t *testing.T) {
	cs, _ := NewCompositionScheduler(3)
	cs.SetReady(0, 1)
	// Only GPU0 ready: nothing can pair.
	if got := cs.NextSessions(); len(got) != 0 {
		t.Errorf("sessions with one ready GPU = %v", got)
	}
	cs.SetReady(1, 1)
	// Links are full duplex: both directions of the pair start together.
	got := cs.NextSessions()
	if len(got) != 2 {
		t.Fatalf("sessions = %v, want both directions", got)
	}
	if got[0].Sender != 0 || got[0].Receiver != 1 || got[1].Sender != 1 || got[1].Receiver != 0 {
		t.Errorf("sessions = %v", got)
	}
	cs.Complete(got[0])
	cs.Complete(got[1])
	// GPU2 never became ready, so the exchange is not globally done.
	if cs.Done() {
		t.Error("scheduler done with GPU2 outstanding")
	}
}

func TestCompositionSchedulerMismatchedCGID(t *testing.T) {
	cs, _ := NewCompositionScheduler(2)
	cs.SetReady(0, 1)
	cs.SetReady(1, 2) // different group
	if got := cs.NextSessions(); len(got) != 0 {
		t.Errorf("cross-group session scheduled: %v", got)
	}
}

func TestCompositionSchedulerCompleteUnscheduledErrors(t *testing.T) {
	cs, _ := NewCompositionScheduler(2)
	if err := cs.Complete(Session{Sender: 0, Receiver: 1}); err == nil {
		t.Error("expected error for unscheduled completion")
	}
	if _, err := NewCompositionScheduler(0); err == nil {
		t.Error("expected error for zero GPUs")
	}
}

func TestCompositionSchedulerReset(t *testing.T) {
	cs, _ := NewCompositionScheduler(2)
	cs.SetReady(0, 1)
	cs.SetReady(1, 1)
	for !cs.Done() {
		for _, s := range cs.NextSessions() {
			cs.Complete(s)
		}
	}
	cs.Reset()
	if cs.Done() {
		t.Error("reset scheduler should not be done")
	}
	if e := cs.Entry(0); e.Ready || e.SentGPUs != 0 {
		t.Errorf("entry after reset = %+v", e)
	}
}

func TestTransparentComposerChain(t *testing.T) {
	const n = 4
	tc := NewTransparentComposer(n)
	for g := 0; g < n; g++ {
		tc.SetReady(g)
	}
	merges := 0
	for !tc.Done() {
		ms := tc.NextMerges()
		if len(ms) == 0 {
			t.Fatal("no merges possible but not done")
		}
		for _, m := range ms {
			// Front range must start right after back range.
			_, backHi, ok1 := tc.Holds(m.To)
			frontLo, _, ok2 := tc.Holds(m.From)
			if !ok1 || !ok2 || frontLo != backHi+1 {
				t.Fatalf("non-adjacent merge %+v", m)
			}
			tc.Complete(m)
			merges++
		}
	}
	if merges != n-1 {
		t.Errorf("merges = %d, want %d", merges, n-1)
	}
	holder, ok := tc.FinalHolder()
	if !ok || holder != 0 {
		t.Errorf("final holder = %d, %v", holder, ok)
	}
}

func TestTransparentComposerPartialReadiness(t *testing.T) {
	tc := NewTransparentComposer(4)
	tc.SetReady(1)
	tc.SetReady(2)
	// Only 1 and 2 ready: exactly the (2→1) merge is available.
	ms := tc.NextMerges()
	if len(ms) != 1 || ms[0].From != 2 || ms[0].To != 1 {
		t.Fatalf("merges = %v", ms)
	}
	tc.Complete(ms[0])
	// Now GPU1 holds [1,2]; nothing else ready.
	if ms := tc.NextMerges(); len(ms) != 0 {
		t.Errorf("unexpected merges %v", ms)
	}
	tc.SetReady(0)
	tc.SetReady(3)
	// 0 can absorb [1,2], 3 not adjacent to 0's [0,0]... after first merge
	// 0 holds [0,2] and then absorbs 3.
	total := 0
	for !tc.Done() {
		ms := tc.NextMerges()
		if len(ms) == 0 {
			t.Fatal("stalled")
		}
		for _, m := range ms {
			tc.Complete(m)
			total++
		}
	}
	if total != 2 {
		t.Errorf("remaining merges = %d, want 2", total)
	}
}

func TestTransparentComposerParallelMerges(t *testing.T) {
	tc := NewTransparentComposer(4)
	for g := 0; g < 4; g++ {
		tc.SetReady(g)
	}
	// All ready: (1→0) and (3→2) can run in parallel.
	ms := tc.NextMerges()
	if len(ms) != 2 {
		t.Fatalf("parallel merges = %v", ms)
	}
}

func TestTransparentComposerCompleteUnscheduledErrors(t *testing.T) {
	tc := NewTransparentComposer(2)
	if err := tc.Complete(Merge{From: 1, To: 0}); err == nil {
		t.Error("expected error for unscheduled merge")
	}
}
