package core

import (
	"math/rand"
	"testing"

	"chopin/internal/colorspace"
	"chopin/internal/primitive"
	"chopin/internal/vecmath"
)

func stateless(tris int, mod func(*primitive.RenderState)) primitive.DrawCommand {
	d := primitive.DrawCommand{
		Tris:  make([]primitive.Triangle, tris),
		Model: vecmath.Identity(),
		State: primitive.DefaultState(),
	}
	if mod != nil {
		mod(&d.State)
	}
	return d
}

func TestReorderMergesCompatibleGroups(t *testing.T) {
	lessEq := func(s *primitive.RenderState) { s.DepthFunc = colorspace.CmpLessEqual }
	// Alternating depth funcs create 4 groups; reordering merges to 2.
	draws := []primitive.DrawCommand{
		stateless(10, nil), stateless(10, lessEq),
		stateless(10, nil), stateless(10, lessEq),
	}
	before := primitive.BuildGroups(draws)
	after := primitive.BuildGroups(Reorder(draws))
	if len(before) != 4 {
		t.Fatalf("before = %d groups", len(before))
	}
	if len(after) != 2 {
		t.Fatalf("after = %d groups, want 2", len(after))
	}
}

func TestReorderPreservesTransparentOrder(t *testing.T) {
	trans := func(op colorspace.BlendOp) func(*primitive.RenderState) {
		return func(s *primitive.RenderState) {
			s.BlendOp = op
			s.DepthWrite = false
		}
	}
	draws := []primitive.DrawCommand{
		stateless(5, nil),
		stateless(3, trans(colorspace.BlendOver)),
		stateless(4, trans(colorspace.BlendOver)),
		stateless(2, trans(colorspace.BlendAdd)),
	}
	for i := range draws {
		draws[i].ID = i
	}
	out := Reorder(draws)
	// Transparent draws must keep their relative order and stay after the
	// opaque draw (they are unmovable and act as barriers).
	var transIDs []int
	for _, d := range out {
		if d.Transparent() {
			transIDs = append(transIDs, d.TriangleCount())
		}
	}
	if len(transIDs) != 3 || transIDs[0] != 3 || transIDs[1] != 4 || transIDs[2] != 2 {
		t.Errorf("transparent order = %v", transIDs)
	}
}

func TestReorderRespectsRTBarriers(t *testing.T) {
	rt1 := func(s *primitive.RenderState) { s.RenderTarget = 1; s.DepthBuffer = 1 }
	lessEq := func(s *primitive.RenderState) { s.DepthFunc = colorspace.CmpLessEqual }
	draws := []primitive.DrawCommand{
		stateless(10, nil),
		stateless(10, rt1), // barrier
		stateless(10, lessEq),
	}
	out := Reorder(draws)
	// The lessEq draw must not move before the RT-1 draw.
	if out[0].State.RenderTarget != 0 || out[1].State.RenderTarget != 1 || out[2].State.DepthFunc != colorspace.CmpLessEqual {
		t.Errorf("order violated: %+v", out)
	}
}

func TestReorderPreservesCounts(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var draws []primitive.DrawCommand
	total := 0
	for i := 0; i < 100; i++ {
		d := stateless(1+r.Intn(30), nil)
		switch r.Intn(4) {
		case 0:
			d.State.DepthFunc = colorspace.CmpLessEqual
		case 1:
			d.State.BlendOp = colorspace.BlendOver
			d.State.DepthWrite = false
		case 2:
			d.State.RenderTarget = r.Intn(2)
			d.State.DepthBuffer = d.State.RenderTarget
		}
		d.ID = i
		total += d.TriangleCount()
		draws = append(draws, d)
	}
	out := Reorder(draws)
	if len(out) != len(draws) {
		t.Fatalf("draw count changed: %d -> %d", len(draws), len(out))
	}
	sum := 0
	for i, d := range out {
		sum += d.TriangleCount()
		if d.ID != i {
			t.Fatalf("IDs not renumbered at %d", i)
		}
	}
	if sum != total {
		t.Fatalf("triangles changed: %d -> %d", total, sum)
	}
	// Groups never increase.
	if len(primitive.BuildGroups(out)) > len(primitive.BuildGroups(draws)) {
		t.Error("reordering increased group count")
	}
}
