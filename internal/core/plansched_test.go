package core

import (
	"testing"

	"chopin/internal/composite/plan"
)

// drivePlan runs a plan to completion through the scheduler, asserting port
// exclusivity and round gating at every step, and returns the completed
// session order.
func drivePlan(t *testing.T, p *plan.Plan) []plan.Session {
	t.Helper()
	ps, err := NewPlanScheduler(p)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < p.N; g++ {
		ps.SetReady(g)
	}
	var order []plan.Session
	for steps := 0; !ps.Done(); steps++ {
		if steps > p.N*p.N*len(p.Rounds)+16 {
			t.Fatalf("plan scheduler stalled after %d completed sessions", len(order))
		}
		batch := ps.NextSessions()
		if len(batch) == 0 {
			t.Fatalf("no startable sessions but not done (%d completed)", len(order))
		}
		sending := make(map[int]bool)
		receiving := make(map[int]bool)
		for _, s := range batch {
			if sending[s.Sender] || receiving[s.Receiver] {
				t.Fatalf("batch double-books a port: %+v", s)
			}
			sending[s.Sender] = true
			receiving[s.Receiver] = true
		}
		for _, s := range batch {
			if err := ps.Complete(s); err != nil {
				t.Fatal(err)
			}
			order = append(order, s)
		}
	}
	if got := len(order); got != p.Sessions() {
		t.Fatalf("completed %d sessions, want %d", got, p.Sessions())
	}
	return order
}

// TestPlanSchedulerAllPlans drives every planner to completion at a spread
// of group sizes, including the 64-GPU scale.
func TestPlanSchedulerAllPlans(t *testing.T) {
	const h = 64
	for _, n := range []int{1, 2, 3, 5, 8, 12, 16, 33, 48, 64} {
		for _, alg := range []plan.Algorithm{plan.AlgDirectSend, plan.AlgBinarySwap, plan.AlgRadixK, plan.AlgMixedRadix} {
			p, err := plan.For(alg, n, h, 0, plan.AssocCommutative, 1)
			if err != nil {
				continue // planner does not support this n
			}
			drivePlan(t, p)
		}
	}
}

// TestPlanSchedulerRoundGating pins that no round-1 session starts before
// both its parties drain round 0: with binary-swap n=4 and only GPUs 0 and
// 1 ready, the pair exchange of round 0 runs between them, but neither may
// enter round 1 (their round-1 peers 2 and 3 are still in round 0).
func TestPlanSchedulerRoundGating(t *testing.T) {
	p, err := plan.BinarySwap(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPlanScheduler(p)
	if err != nil {
		t.Fatal(err)
	}
	ps.SetReady(0)
	ps.SetReady(1)
	var completed int
	for {
		batch := ps.NextSessions()
		if len(batch) == 0 {
			break
		}
		for _, s := range batch {
			if s.Sender > 1 || s.Receiver > 1 {
				t.Fatalf("session %+v scheduled with GPUs 2,3 not ready", s)
			}
			if err := ps.Complete(s); err != nil {
				t.Fatal(err)
			}
			completed++
		}
	}
	if completed != 2 {
		t.Fatalf("completed %d sessions with half the group ready, want 2 (the 0↔1 pair)", completed)
	}
	if ps.Round(0) != 1 || ps.Round(1) != 1 {
		t.Fatalf("rounds after pair exchange: %d, %d; want 1, 1", ps.Round(0), ps.Round(1))
	}
	if ps.Done() {
		t.Fatal("scheduler done with GPUs 2,3 never ready")
	}
	// The stragglers arrive; the plan must now run to completion.
	ps.SetReady(2)
	ps.SetReady(3)
	for !ps.Done() {
		batch := ps.NextSessions()
		if len(batch) == 0 {
			t.Fatal("stalled after stragglers became ready")
		}
		for _, s := range batch {
			if err := ps.Complete(s); err != nil {
				t.Fatal(err)
			}
			completed++
		}
	}
	if completed != p.Sessions() {
		t.Fatalf("completed %d sessions, want %d", completed, p.Sessions())
	}
}

// TestPlanSchedulerErrors pins the misuse contract.
func TestPlanSchedulerErrors(t *testing.T) {
	if _, err := NewPlanScheduler(nil); err == nil {
		t.Error("NewPlanScheduler(nil): want error")
	}
	p, _ := plan.DirectSend(2, 8)
	ps, err := NewPlanScheduler(p)
	if err != nil {
		t.Fatal(err)
	}
	ps.SetReady(0)
	ps.SetReady(1)
	if err := ps.Complete(plan.Session{Sender: 0, Receiver: 1}); err == nil {
		t.Error("Complete before NextSessions: want error")
	}
	batch := ps.NextSessions()
	if len(batch) != 2 {
		t.Fatalf("direct-send n=2 start batch = %d sessions, want 2", len(batch))
	}
	if err := ps.Complete(batch[0]); err != nil {
		t.Fatal(err)
	}
	if err := ps.Complete(batch[0]); err == nil {
		t.Error("double Complete: want error")
	}
}

// TestPlanSchedulerSingleGPU pins the degenerate group: one GPU, no
// sessions, done at SetReady.
func TestPlanSchedulerSingleGPU(t *testing.T) {
	p, err := plan.DirectSend(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPlanScheduler(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Done() {
		t.Fatal("done before SetReady")
	}
	ps.SetReady(0)
	if !ps.Done() {
		t.Fatal("single-GPU group not done after SetReady")
	}
}
