// Command chopintrace summarizes and validates timeline files produced by
// chopinsim -timeline (Chrome trace-event JSON, loadable in Perfetto).
//
// Usage:
//
//	chopintrace trace.json             print the trace digest
//	chopintrace -top 20 trace.json     show the 20 longest spans
//	chopintrace -check trace.json      validate structural invariants only
//
// The digest shows the k longest spans, per-track busy utilization, and a
// critical-path lower bound (the union of busy intervals across tracks).
// -check exits non-zero if any exporter invariant is violated: negative
// durations, non-monotone span starts per track, out-of-order counter
// samples, or unpaired flow arrows.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"chopin/internal/obs"
)

func main() {
	var (
		top   = flag.Int("top", 10, "number of longest spans to show")
		check = flag.Bool("check", false, "validate trace invariants and exit (non-zero on violation)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chopintrace [-top k] [-check] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, *check); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(path string, top int, check bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tf, err := obs.Load(f)
	if err != nil {
		var trunc *obs.TruncatedTraceError
		switch {
		case errors.Is(err, obs.ErrEmptyTrace):
			return fmt.Errorf("%s is empty — the simulation may have exited before the timeline was written (%w)", path, err)
		case errors.As(err, &trunc):
			return fmt.Errorf("%s is cut off mid-write; re-run the capture (%w)", path, err)
		}
		return err
	}

	problems := tf.Validate()
	if check {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "INVALID:", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("%d invariant violation(s) in %s", len(problems), path)
		}
		fmt.Printf("%s: %d events, all trace invariants hold\n", path, len(tf.Events))
		return nil
	}

	s := tf.Summarize(top)
	fmt.Printf("%s: %d events over cycles [%d, %d] (%d cycles)\n",
		path, len(tf.Events), s.Start, s.End, s.End-s.Start)
	fmt.Printf("counters: %d series\n", s.Counters)
	fmt.Printf("busy coverage: %d cycles (%.1f%% of interval); critical-path lower bound: %d cycles\n",
		s.BusyCoverage, pct(s.BusyCoverage, s.End-s.Start), s.CriticalPath)

	fmt.Printf("\ntop %d spans by duration:\n", len(s.TopSpans))
	for _, e := range s.TopSpans {
		fmt.Printf("  %12d cycles  @%-12d %-24s %s\n", e.Dur, e.Ts, tf.TrackName(e.Pid, e.Tid), e.Name)
	}

	fmt.Printf("\nper-track utilization (busiest first):\n")
	for _, t := range s.Tracks {
		fmt.Printf("  %-24s %6.1f%%  busy %12d cycles  %6d spans\n",
			t.Name, 100*t.Utilization, t.Busy, t.Spans)
	}

	if len(problems) > 0 {
		fmt.Printf("\nWARNING: %d invariant violation(s); rerun with -check for details\n", len(problems))
	}
	return nil
}

func pct(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
