// Command chopintrace summarizes and validates timeline files produced by
// chopinsim -timeline (Chrome trace-event JSON, loadable in Perfetto).
//
// Usage:
//
//	chopintrace trace.json             print the trace digest
//	chopintrace -top 20 trace.json     show the 20 longest spans
//	chopintrace -check trace.json      validate structural invariants only
//	chopintrace -critical trace.json   causal critical path + attribution
//	chopintrace -whatif trace.json     what-if bounds per category
//	chopintrace -fabric trace.json     fabric channels, congestion waves, latency
//	chopintrace -json trace.json       machine-readable digest (byte-stable)
//
// The digest shows the k longest spans, per-track busy utilization, and the
// busy-coverage figure. -critical builds the causal dependency graph
// (internal/obs/causal) and prints the exact critical path plus a
// per-category cycle attribution that sums to the frame makespan; -whatif
// adds "removing category X buys at most Y" speedup bounds. Combining
// -critical with -check additionally gates the causal accounting invariants
// (attribution sums to the makespan) and exits non-zero on violation.
//
// -check alone exits non-zero if any exporter invariant is violated:
// negative durations, non-monotone span starts per track, out-of-order
// counter samples, or unpaired flow arrows.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"chopin/internal/obs"
	"chopin/internal/obs/causal"
)

// options collects the command-line switches run honors.
type options struct {
	top      int
	check    bool
	critical bool
	whatif   bool
	fabric   bool
	jsonOut  bool
}

func main() {
	var opt options
	flag.IntVar(&opt.top, "top", 10, "number of longest spans to show")
	flag.BoolVar(&opt.check, "check", false, "validate trace invariants and exit (non-zero on violation)")
	flag.BoolVar(&opt.critical, "critical", false, "build the causal graph; print critical path and bottleneck attribution")
	flag.BoolVar(&opt.whatif, "whatif", false, "print what-if speedup bounds per category (implies the causal graph)")
	flag.BoolVar(&opt.fabric, "fabric", false, "print the fabric breakdown: hottest channels, per-wave congestion, wire-latency quantiles")
	flag.BoolVar(&opt.jsonOut, "json", false, "emit the digest as byte-stable JSON instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chopintrace [-top k] [-check] [-critical] [-whatif] [-fabric] [-json] trace.json")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), opt); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// jsonTrack is the machine-readable per-track utilization row.
type jsonTrack struct {
	Name        string  `json:"name"`
	Busy        int64   `json:"busy"`
	Spans       int     `json:"spans"`
	Utilization float64 `json:"utilization"`
}

// jsonDigest is the -json output. Field order is fixed by the struct and all
// nested slices are canonically ordered, so output is byte-stable for
// identical traces.
type jsonDigest struct {
	Events       int            `json:"events"`
	Start        int64          `json:"start"`
	End          int64          `json:"end"`
	BusyCoverage int64          `json:"busy_coverage"`
	CriticalPath int64          `json:"critical_path"`
	Counters     int            `json:"counters"`
	Tracks       []jsonTrack    `json:"tracks"`
	Causal       *causal.Report `json:"causal,omitempty"`
	// Fabric is present only with -fabric.
	Fabric *obs.FabricSummary `json:"fabric,omitempty"`
}

func run(w io.Writer, path string, opt options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tf, err := obs.Load(f)
	if err != nil {
		var trunc *obs.TruncatedTraceError
		switch {
		case errors.Is(err, obs.ErrEmptyTrace):
			return fmt.Errorf("%s is empty — the simulation may have exited before the timeline was written (%w)", path, err)
		case errors.As(err, &trunc):
			return fmt.Errorf("%s is cut off mid-write; re-run the capture (%w)", path, err)
		}
		return err
	}

	var fab *obs.FabricSummary
	if opt.fabric {
		fab, err = tf.FabricSummary()
		if err != nil {
			// ErrNoTransferSpans and friends: the breakdown was asked for
			// explicitly, so fail with the typed error, never an empty table.
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	var rep *causal.Report
	if opt.critical || opt.whatif || opt.jsonOut {
		rep, err = causal.AnalyzeTrace(tf)
		if err != nil {
			// A capture without category tags has no causal graph; the JSON
			// digest simply omits the block, but -critical/-whatif were asked
			// for it explicitly and must fail loudly.
			if !errors.Is(err, causal.ErrNoCategories) || opt.critical || opt.whatif {
				return err
			}
			rep = nil
		}
	}

	problems := tf.Validate()
	if opt.check {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "INVALID:", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("%d invariant violation(s) in %s", len(problems), path)
		}
		fmt.Fprintf(w, "%s: %d events, all trace invariants hold\n", path, len(tf.Events))
		if rep != nil {
			if err := rep.Check(); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(w, "causal: attribution sums to makespan %d; critical path %d cycles\n",
				rep.Makespan, rep.CriticalPath)
		}
		if !opt.jsonOut {
			return nil
		}
	}

	s := tf.Summarize(opt.top)
	if rep != nil {
		s.CriticalPath = rep.CriticalPath
	}

	if opt.jsonOut {
		d := jsonDigest{
			Events:       len(tf.Events),
			Start:        s.Start,
			End:          s.End,
			BusyCoverage: s.BusyCoverage,
			CriticalPath: s.CriticalPath,
			Counters:     s.Counters,
			Causal:       rep,
			Fabric:       fab,
		}
		for _, t := range s.Tracks {
			d.Tracks = append(d.Tracks, jsonTrack{Name: t.Name, Busy: t.Busy, Spans: t.Spans, Utilization: t.Utilization})
		}
		enc := json.NewEncoder(w)
		return enc.Encode(&d)
	}

	fmt.Fprintf(w, "%s: %d events over cycles [%d, %d] (%d cycles)\n",
		path, len(tf.Events), s.Start, s.End, s.End-s.Start)
	fmt.Fprintf(w, "counters: %d series\n", s.Counters)
	fmt.Fprintf(w, "busy coverage: %d cycles (%.1f%% of interval)\n",
		s.BusyCoverage, pct(s.BusyCoverage, s.End-s.Start))

	if rep != nil && opt.critical {
		fmt.Fprintf(w, "\ncausal critical path: %d of %d cycles executing (%.1f%%); graph %d nodes, %d edges\n",
			rep.CriticalPath, rep.Makespan, pct(rep.CriticalPath, rep.Makespan), rep.Nodes, rep.EdgeCount)
		fmt.Fprintf(w, "bottleneck attribution (sums to makespan):\n")
		for _, a := range rep.Attribution {
			fmt.Fprintf(w, "  %-12s %12d cycles  %5.1f%%\n", a.Category, a.Cycles, 100*a.Fraction)
		}
	}
	if rep != nil && opt.whatif {
		fmt.Fprintf(w, "\nwhat-if bounds (one category's weights zeroed, makespan recomputed):\n")
		for _, wi := range rep.WhatIf {
			fmt.Fprintf(w, "  -%-12s makespan %12d  saved %12d  speedup %5.2fx\n",
				wi.Category, wi.Makespan, wi.Saved, wi.Speedup)
		}
	}

	if fab != nil {
		printFabric(w, fab, opt.top)
	}

	fmt.Fprintf(w, "\ntop %d spans by duration:\n", len(s.TopSpans))
	for _, e := range s.TopSpans {
		fmt.Fprintf(w, "  %12d cycles  @%-12d %-24s %s\n", e.Dur, e.Ts, tf.TrackName(e.Pid, e.Tid), e.Name)
	}

	fmt.Fprintf(w, "\nper-track utilization (busiest first):\n")
	for _, t := range s.Tracks {
		fmt.Fprintf(w, "  %-24s %6.1f%%  busy %12d cycles  %6d spans\n",
			t.Name, 100*t.Utilization, t.Busy, t.Spans)
	}

	if len(problems) > 0 {
		fmt.Fprintf(w, "\nWARNING: %d invariant violation(s); rerun with -check for details\n", len(problems))
	}
	return nil
}

// printFabric renders the trace-derived fabric breakdown: channel table,
// latency quantiles, and the gap-separated congestion waves (one per
// composition round under round-barriered exchanges).
func printFabric(w io.Writer, fab *obs.FabricSummary, top int) {
	fmt.Fprintf(w, "\nfabric: %d channels, %d transfers, %.2f MB, %d retries\n",
		len(fab.Pairs), fab.Transfers, float64(fab.Bytes)/(1<<20), fab.Retries)
	if fab.Latencies > 0 {
		fmt.Fprintf(w, "wire latency (egress start -> ingress drain, %d transfers): p50 %d  p90 %d  p99 %d cycles\n",
			fab.Latencies, fab.LatencyP50, fab.LatencyP90, fab.LatencyP99)
	}
	n := len(fab.Pairs)
	if top > 0 && n > top {
		n = top
	}
	fmt.Fprintf(w, "hottest channels (of %d):\n", len(fab.Pairs))
	for _, p := range fab.Pairs[:n] {
		fmt.Fprintf(w, "  %-10s busy %12d cycles  %10.2f MB  %6d transfers  %d retries\n",
			p.Name(), p.Busy, float64(p.Bytes)/(1<<20), p.Transfers, p.Retries)
	}
	const maxWaves = 16
	fmt.Fprintf(w, "congestion waves (%d, gap-separated):\n", len(fab.Waves))
	for i, wv := range fab.Waves {
		if i == maxWaves {
			fmt.Fprintf(w, "  ... %d more\n", len(fab.Waves)-maxWaves)
			break
		}
		fmt.Fprintf(w, "  %3d: cycles [%d, %d]  %6d transfers  %10.2f MB  hottest g%d->g%d (%d cycles)\n",
			i, wv.Start, wv.End, wv.Transfers, float64(wv.Bytes)/(1<<20),
			wv.MaxPairSrc, wv.MaxPairDst, wv.MaxPairBusy)
	}
}

func pct(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
