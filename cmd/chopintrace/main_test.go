package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chopin/internal/obs"
	"chopin/internal/obs/causal"
)

// writeTemp writes content to a file in a test temp dir and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeTaggedTrace exports a small category-tagged timeline to disk and
// returns its path: two pipeline spans, a barrier joined by the second, and
// a merge the barrier releases.
func writeTaggedTrace(t *testing.T) string {
	t.Helper()
	tr := obs.New()
	geo := tr.Track(obs.PidGPU(0), obs.GPUProcName(0), obs.TidGeometry, "geometry")
	frag := tr.Track(obs.PidGPU(0), obs.GPUProcName(0), obs.TidFragment, "fragment")
	bar := tr.Track(obs.PidSim, obs.SimProcName, obs.TidBarriers, "barriers")
	tr.Span(geo, "draw geom", 0, 100, obs.CatArg(obs.CatGeometry), obs.Arg{Key: "draw", Val: 1})
	tr.Span(frag, "draw", 100, 80, obs.CatArg(obs.CatRaster), obs.Arg{Key: "draw", Val: 1})
	tr.Span(bar, "render", 0, 180, obs.CatArg(obs.CatQueueing))
	tr.Span(frag, "merge", 180, 60, obs.CatArg(obs.CatComposition))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, "tagged.json", buf.String())
}

func TestRunEmptyTrace(t *testing.T) {
	for _, tc := range []struct {
		name, content string
	}{
		{"zero-bytes", ""},
		{"whitespace-only", "  \n\t\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "trace.json", tc.content)
			err := run(io.Discard, path, options{top: 10})
			if !errors.Is(err, obs.ErrEmptyTrace) {
				t.Fatalf("run() = %v, want ErrEmptyTrace", err)
			}
		})
	}
}

func TestRunTruncatedTrace(t *testing.T) {
	for _, tc := range []struct {
		name, content string
	}{
		{"object-form", `{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, `},
		{"array-form", `[{"name": "raster", "ph": "X"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "trace.json", tc.content)
			err := run(io.Discard, path, options{top: 10})
			var trunc *obs.TruncatedTraceError
			if !errors.As(err, &trunc) {
				t.Fatalf("run() = %v, want *TruncatedTraceError", err)
			}
		})
	}
}

func TestRunMalformedMidFile(t *testing.T) {
	// Garbage in the middle of an otherwise-complete file is a parse error,
	// not a truncation.
	path := writeTemp(t, "trace.json", `{"traceEvents": [}{]}`)
	err := run(io.Discard, path, options{top: 10})
	if err == nil {
		t.Fatal("run() accepted malformed JSON")
	}
	var trunc *obs.TruncatedTraceError
	if errors.As(err, &trunc) {
		t.Fatalf("mid-file garbage misclassified as truncation: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(io.Discard, filepath.Join(t.TempDir(), "nope.json"), options{top: 10}); err == nil {
		t.Fatal("run() succeeded on a missing file")
	}
}

func TestRunValidTrace(t *testing.T) {
	path := writeTemp(t, "trace.json",
		`{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, "dur": 100, "pid": 0, "tid": 1}]}`)
	if err := run(io.Discard, path, options{top: 10}); err != nil {
		t.Fatalf("run() on a valid trace: %v", err)
	}
	if err := run(io.Discard, path, options{top: 10, check: true}); err != nil {
		t.Fatalf("run() -check on a valid trace: %v", err)
	}
}

func TestRunCriticalPrintsAttribution(t *testing.T) {
	path := writeTaggedTrace(t)
	var out bytes.Buffer
	if err := run(&out, path, options{top: 10, critical: true, whatif: true}); err != nil {
		t.Fatalf("run() -critical -whatif: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"causal critical path: 240 of 240 cycles",
		"bottleneck attribution",
		"geometry", "raster", "composition",
		"what-if bounds",
		"-composition",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunCriticalCheckGate: -critical -check passes the causal accounting
// gate on a tagged trace, and fails loudly (typed ErrNoCategories) on a
// capture that predates category tagging.
func TestRunCriticalCheckGate(t *testing.T) {
	path := writeTaggedTrace(t)
	var out bytes.Buffer
	if err := run(&out, path, options{top: 10, check: true, critical: true}); err != nil {
		t.Fatalf("run() -critical -check: %v", err)
	}
	if !strings.Contains(out.String(), "attribution sums to makespan") {
		t.Errorf("gate confirmation missing from output:\n%s", out.String())
	}

	untagged := writeTemp(t, "old.json",
		`{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, "dur": 100, "pid": 0, "tid": 1}]}`)
	err := run(io.Discard, untagged, options{top: 10, check: true, critical: true})
	if !errors.Is(err, causal.ErrNoCategories) {
		t.Fatalf("run() -critical on an untagged trace = %v, want ErrNoCategories", err)
	}
}

// TestRunJSONRoundTrip: -json output is byte-stable across invocations and
// parses back into the digest structure with the causal block intact.
func TestRunJSONRoundTrip(t *testing.T) {
	path := writeTaggedTrace(t)
	var a, b bytes.Buffer
	if err := run(&a, path, options{top: 10, jsonOut: true}); err != nil {
		t.Fatalf("run() -json: %v", err)
	}
	if err := run(&b, path, options{top: 10, jsonOut: true}); err != nil {
		t.Fatalf("run() -json (second): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("-json output not byte-stable:\n%s\n%s", a.String(), b.String())
	}
	var d jsonDigest
	if err := json.Unmarshal(a.Bytes(), &d); err != nil {
		t.Fatalf("unmarshal -json output: %v", err)
	}
	if d.Events == 0 || len(d.Tracks) == 0 {
		t.Errorf("digest missing summary data: %+v", d)
	}
	if d.Causal == nil {
		t.Fatal("digest missing causal block for a tagged trace")
	}
	if err := d.Causal.Check(); err != nil {
		t.Errorf("round-tripped causal report fails its own invariants: %v", err)
	}
	if d.CriticalPath != d.Causal.CriticalPath {
		t.Errorf("digest critical path %d != causal report %d", d.CriticalPath, d.Causal.CriticalPath)
	}
	if len(d.Causal.WhatIf) == 0 {
		t.Error("causal block has no what-if entries")
	}
}

// writeFabricTrace exports a timeline with one fabric transfer: an egress
// span on GPU 0 flow-paired to an ingress span on GPU 1.
func writeFabricTrace(t *testing.T) string {
	t.Helper()
	tr := obs.New()
	eg := tr.Track(obs.PidGPU(0), obs.GPUProcName(0), obs.TidEgress, "link egress")
	in := tr.Track(obs.PidGPU(1), obs.GPUProcName(1), obs.TidIngress, "link ingress")
	id := tr.FlowStart(eg, "composition", 0)
	tr.Span(eg, "composition", 0, 100,
		obs.Arg{Key: "bytes", Val: 6400}, obs.Arg{Key: "dst", Val: 1}, obs.Arg{Key: "attempt", Val: 1})
	tr.Span(in, "composition", 200, 100,
		obs.Arg{Key: "bytes", Val: 6400}, obs.Arg{Key: "src", Val: 0}, obs.Arg{Key: "attempt", Val: 1})
	tr.FlowEnd(in, "composition", 200, id)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, "fabric.json", buf.String())
}

// TestRunFabric: -fabric prints the channel table and congestion waves, and
// the -json digest carries the fabric block.
func TestRunFabric(t *testing.T) {
	path := writeFabricTrace(t)
	var out bytes.Buffer
	if err := run(&out, path, options{top: 10, fabric: true}); err != nil {
		t.Fatalf("run() -fabric: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"fabric: 1 channels, 1 transfers",
		"g0->g1",
		"congestion waves (1",
		"wire latency",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	var j bytes.Buffer
	if err := run(&j, path, options{top: 10, fabric: true, jsonOut: true}); err != nil {
		t.Fatalf("run() -fabric -json: %v", err)
	}
	var d jsonDigest
	if err := json.Unmarshal(j.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Fabric == nil || d.Fabric.Transfers != 1 || len(d.Fabric.Pairs) != 1 {
		t.Errorf("json digest fabric block = %+v", d.Fabric)
	}
}

// TestRunFabricNoTransferSpans: asking for the fabric breakdown of a trace
// with no transfer spans fails with the typed error — never a zero-row
// table.
func TestRunFabricNoTransferSpans(t *testing.T) {
	path := writeTaggedTrace(t) // pipeline spans only, nothing on the fabric
	err := run(io.Discard, path, options{top: 10, fabric: true})
	if !errors.Is(err, obs.ErrNoTransferSpans) {
		t.Fatalf("run() -fabric on a fabric-less trace = %v, want ErrNoTransferSpans", err)
	}
	// Without -fabric the same trace still summarizes fine.
	if err := run(io.Discard, path, options{top: 10}); err != nil {
		t.Fatalf("run() without -fabric: %v", err)
	}
}

// TestRunJSONUntagged: -json on a capture without categories still works,
// omitting the causal block rather than failing.
func TestRunJSONUntagged(t *testing.T) {
	path := writeTemp(t, "old.json",
		`{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, "dur": 100, "pid": 0, "tid": 1}]}`)
	var out bytes.Buffer
	if err := run(&out, path, options{top: 10, jsonOut: true}); err != nil {
		t.Fatalf("run() -json on untagged trace: %v", err)
	}
	var d jsonDigest
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Causal != nil {
		t.Error("untagged trace produced a causal block")
	}
	if d.CriticalPath != 0 {
		t.Errorf("critical path = %d without dependency info, want 0", d.CriticalPath)
	}
}
