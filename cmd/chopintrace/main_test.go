package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/obs"
)

// writeTemp writes content to a file in a test temp dir and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEmptyTrace(t *testing.T) {
	for _, tc := range []struct {
		name, content string
	}{
		{"zero-bytes", ""},
		{"whitespace-only", "  \n\t\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "trace.json", tc.content)
			err := run(path, 10, false)
			if !errors.Is(err, obs.ErrEmptyTrace) {
				t.Fatalf("run() = %v, want ErrEmptyTrace", err)
			}
		})
	}
}

func TestRunTruncatedTrace(t *testing.T) {
	for _, tc := range []struct {
		name, content string
	}{
		{"object-form", `{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, `},
		{"array-form", `[{"name": "raster", "ph": "X"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "trace.json", tc.content)
			err := run(path, 10, false)
			var trunc *obs.TruncatedTraceError
			if !errors.As(err, &trunc) {
				t.Fatalf("run() = %v, want *TruncatedTraceError", err)
			}
		})
	}
}

func TestRunMalformedMidFile(t *testing.T) {
	// Garbage in the middle of an otherwise-complete file is a parse error,
	// not a truncation.
	path := writeTemp(t, "trace.json", `{"traceEvents": [}{]}`)
	err := run(path, 10, false)
	if err == nil {
		t.Fatal("run() accepted malformed JSON")
	}
	var trunc *obs.TruncatedTraceError
	if errors.As(err, &trunc) {
		t.Fatalf("mid-file garbage misclassified as truncation: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), 10, false); err == nil {
		t.Fatal("run() succeeded on a missing file")
	}
}

func TestRunValidTrace(t *testing.T) {
	path := writeTemp(t, "trace.json",
		`{"traceEvents": [{"name": "raster", "ph": "X", "ts": 0, "dur": 100, "pid": 0, "tid": 1}]}`)
	if err := run(path, 10, false); err != nil {
		t.Fatalf("run() on a valid trace: %v", err)
	}
	if err := run(path, 10, true); err != nil {
		t.Fatalf("run() -check on a valid trace: %v", err)
	}
}
