// Command tracegen generates, inspects, and saves the synthetic benchmark
// traces that stand in for the paper's eight game frames (Table III).
//
// Usage:
//
//	tracegen -list                      show the benchmark table
//	tracegen -bench cry -info           summarize a generated trace
//	tracegen -bench cry -o cry.trace    write the binary trace to a file
//	tracegen -in cry.trace -info        summarize a saved trace
package main

import (
	"flag"
	"fmt"
	"os"

	"chopin/internal/primitive"
	"chopin/internal/trace"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list benchmarks (Table III)")
		bench = flag.String("bench", "", "benchmark to generate")
		scale = flag.Float64("scale", 1.0, "trace scale in (0,1]")
		out   = flag.String("o", "", "write the generated trace to this file")
		in    = flag.String("in", "", "load a trace file instead of generating")
		info  = flag.Bool("info", false, "print a trace summary")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-32s %-10s %8s %10s\n", "name", "title", "resolution", "draws", "triangles")
		for _, b := range trace.Benchmarks {
			fmt.Printf("%-8s %-32s %dx%-6d %8d %10d\n", b.Name, b.Title, b.Width, b.Height, b.Draws, b.Triangles)
		}
		return
	}

	var fr *primitive.Frame
	switch {
	case *in != "":
		var err error
		fr, err = trace.LoadFile(*in)
		if err != nil {
			fail(err)
		}
	case *bench != "":
		b, err := trace.ByName(*bench)
		if err != nil {
			fail(err)
		}
		fr = trace.Generate(b, *scale)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *info {
		summarize(fr)
	}
	if *out != "" {
		if err := trace.SaveFile(*out, fr); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func summarize(fr *primitive.Frame) {
	groups := primitive.BuildGroups(fr.Draws)
	var transDraws, transTris int
	for _, d := range fr.Draws {
		if d.Transparent() {
			transDraws++
			transTris += d.TriangleCount()
		}
	}
	fmt.Printf("resolution: %dx%d\n", fr.Width, fr.Height)
	fmt.Printf("draw commands: %d (%d transparent)\n", len(fr.Draws), transDraws)
	fmt.Printf("triangles: %d (%d transparent)\n", fr.TriangleCount(), transTris)
	fmt.Printf("composition groups: %d\n", len(groups))
	for i, g := range groups {
		kind := "opaque"
		if g.Transparent {
			kind = "transparent/" + g.BlendOp.String()
		}
		fmt.Printf("  group %2d: draws [%4d,%4d) %8d tris  %s\n", i, g.Start, g.End, g.Triangles, kind)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
