// Command chopinsim runs the CHOPIN multi-GPU rendering simulator: single
// scheme simulations or whole paper experiments.
//
// Usage:
//
//	chopinsim -list                         list experiments
//	chopinsim -exp fig13 [-scale 0.25]      reproduce a paper figure/table
//	chopinsim -exp all                      run every experiment
//	chopinsim -bench cry -scheme chopin     simulate one scheme on one trace
//	chopinsim -scheme chopin -gpus 64 -topology mesh -comp-alg radix-k   scale-out run
//	chopinsim -verify -bench cry -scheme chopin   run with invariant checks
//	chopinsim -scheme chopin -timeline t.json -metrics m.csv   capture a timeline
//	chopinsim -scheme chopin -timeline t.json -trace-frame 2   trace the 3rd repeat
//	chopinsim -selfcheck                    determinism self-check
//	chopinsim -update-golden                re-record golden experiment outputs
//
// Trace scale 1.0 reproduces the paper's Table III workload sizes; smaller
// scales shrink everything proportionally for quick runs.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"chopin/internal/composite/plan"
	"chopin/internal/experiments"
	"chopin/internal/fault"
	"chopin/internal/interconnect"
	"chopin/internal/multigpu"
	"chopin/internal/obs"
	"chopin/internal/obs/causal"
	"chopin/internal/obs/live"
	"chopin/internal/runrec"
	"chopin/internal/sfr"
	"chopin/internal/sim"
	"chopin/internal/stats"
	"chopin/internal/trace"
)

// UsageError is a command-line validation failure; main reports it and
// exits with the flag-usage status (2) instead of the runtime-error
// status (1).
type UsageError struct {
	Flag   string
	Reason string
}

func (e *UsageError) Error() string { return fmt.Sprintf("invalid -%s: %s", e.Flag, e.Reason) }

// validateMetricsInterval rejects non-positive counter sampling intervals:
// zero would silently disable periodic sampling and a negative interval
// would make every Tick a sweep (an allocation storm), so both are usage
// errors rather than accepted values.
func validateMetricsInterval(v int64) error {
	if v <= 0 {
		return &UsageError{Flag: "metrics-interval",
			Reason: fmt.Sprintf("sampling interval must be a positive cycle count, got %d", v)}
	}
	return nil
}

// gitRev reports the VCS revision stamped into the binary, or "unknown"
// (e.g. under `go run`, which does not stamp VCS info). Run records embed
// it; it never varies between two runs of the same binary, preserving the
// byte-identical-records contract.
func gitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		scale   = flag.Float64("scale", 0.25, "trace scale in (0,1]; 1.0 = paper-size workloads")
		benches = flag.String("benches", "", "comma-separated benchmark subset (default: all eight)")
		scheme  = flag.String("scheme", "", "single run: duplication | gpupd | sort-middle | chopin | chopin-naive | chopin-rr | chopin-reorder")
		bench   = flag.String("bench", "cod2", "single run: benchmark name")
		gpus    = flag.Int("gpus", 8, "single run: GPU count (up to 64 with an exchange plan)")
		ideal   = flag.Bool("ideal", false, "single run: idealized inter-GPU links")
		topo    = flag.String("topology", "", "single run: inter-GPU fabric: crossbar | ring | mesh (default crossbar)")
		compAlg = flag.String("comp-alg", "", "single run: CHOPIN composition exchange plan: direct-send | binary-swap | radix-k | mixed-radix | auto (default direct-send)")
		radixK  = flag.Int("radix-k", 0, "single run: radix for -comp-alg radix-k (0 = largest supported)")
		pngOut  = flag.String("png", "", "single run: write the rendered frame to this PNG file")
		fabSum  = flag.Bool("fabric-summary", false, "single run: enable fabric link telemetry and print the per-link summary (hottest links, latency quantiles)")
		verify  = flag.Bool("verify", false, "attach the runtime invariant checker to every simulation")
		update  = flag.Bool("update-golden", false, "re-record the golden experiment outputs and exit")
		gdir    = flag.String("golden-dir", "internal/experiments/testdata/golden", "golden output directory (with -update-golden)")
		self    = flag.Bool("selfcheck", false, "run the determinism self-check (sequential vs parallel) and exit")
		verbose = flag.Bool("v", false, "stream per-simulation progress")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
		workers = flag.Int("workers", 0, "concurrent simulations per experiment (0 = GOMAXPROCS)")
		engineW = flag.Int("engine-workers", 0, "event-engine worker goroutines per simulation; >1 enables the conservative parallel engine (0/1 = sequential)")

		faults     = flag.String("faults", "", "single run: fault-injection spec (drop=P,corrupt=P,dup=P,delay=P:C,degrade=F@A:B,stall=G@A+D,fail=G@A,link:A-B@T) or 'random'")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the fault plan (with -faults)")
		stragglerW = flag.Int64("straggler-window", 0, "single run: arm CHOPIN's per-round straggler watchdog with this progress window in cycles (0 = off)")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit; the simulation cancels cleanly when it expires (0 = none)")

		timeline = flag.String("timeline", "", "single run: write a Perfetto/Chrome trace-event timeline (JSON) to this file")
		metrics  = flag.String("metrics", "", "single run: write sampled counters (CSV) to this file")
		mInterv  = flag.Int64("metrics-interval", obs.DefaultSampleInterval, "single run: counter sampling interval in cycles")
		trFrame  = flag.Int("trace-frame", 0, "single run: repeat the frame N+1 times on fresh systems and trace only repeat N (steady-state capture)")

		runrecOut = flag.String("runrec", "", "write a structured run record (JSON) of every simulation to this file")
		listen    = flag.String("listen", "", "serve the live sweep monitor (expvar, pprof, SSE progress) on this address, e.g. :8080")
	)
	flag.Parse()

	if err := validateMetricsInterval(*mInterv); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}()
	}

	switch {
	case *update:
		opt := experiments.GoldenOptions()
		opt.Verbose = *verbose
		opt.Out = os.Stderr
		opt.Workers = *workers
		opt.EngineWorkers = *engineW
		if err := experiments.UpdateGolden(*gdir, opt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("re-recorded %d golden files in %s\n", len(experiments.IDs()), *gdir)
	case *self:
		opt := experiments.Options{Scale: *scale, Verify: *verify, Verbose: *verbose, Out: os.Stderr,
			Workers: *workers, EngineWorkers: *engineW}
		if *benches != "" {
			opt.Benchmarks = strings.Split(*benches, ",")
		}
		digests, err := experiments.CheckDeterminism(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, d := range digests {
			cfgLabel := d.Cfg
			if cfgLabel == "" {
				cfgLabel = "default"
			}
			fmt.Printf("%-12s %-6s n=%-2d %-22s %12d cycles  image %016x\n",
				d.Scheme, d.Bench, d.GPUs, cfgLabel, d.Cycles, d.Image)
		}
		fmt.Printf("determinism self-check passed: %d simulations identical sequentially and in parallel\n", len(digests))
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
	case *exp != "":
		opt := experiments.Options{
			Scale:         *scale,
			Verify:        *verify,
			Verbose:       *verbose,
			Out:           os.Stderr,
			Workers:       *workers,
			EngineWorkers: *engineW,
		}
		if *timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			opt.Ctx = ctx
		}
		if *benches != "" {
			opt.Benchmarks = strings.Split(*benches, ",")
		}
		ids := []string{*exp}
		if *exp == "all" {
			ids = experiments.IDs()
		}
		var rec *runrec.Recorder
		if *runrecOut != "" {
			benchNames := opt.Benchmarks
			if len(benchNames) == 0 {
				benchNames = trace.Names()
			}
			rec = runrec.NewRecorder(runrec.Meta{
				Tool: "chopinsim", GitRev: gitRev(), Scale: *scale,
				Benchmarks: benchNames, Experiments: ids,
			})
			opt.Record = rec
		}
		var mon *live.Monitor
		if *listen != "" {
			m, err := serveMonitor(*listen)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			mon = m
			opt.Progress = func(e experiments.ProgressEvent) {
				mon.Observe(fmt.Sprintf("%s/%s/%s/n%d", e.Experiment, e.Scheme, e.Bench, e.GPUs),
					e.Done, e.Total)
			}
		}
		for _, id := range ids {
			if mon != nil {
				mon.SetRun(fmt.Sprintf("%s scale=%.2f", id, *scale))
			}
			res, err := experiments.Run(id, opt)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					fmt.Fprintf(os.Stderr, "error: experiment %s exceeded the %s wall-clock limit\n", id, *timeout)
				} else {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
				os.Exit(1)
			}
			fmt.Println(res)
		}
		if mon != nil {
			mon.Finish()
		}
		if rec != nil {
			if err := rec.Record().WriteFile(*runrecOut); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote run record %s (%d rows)\n", *runrecOut, rec.Len())
		}
	case *scheme != "":
		to := traceOpts{
			timeline: *timeline,
			metrics:  *metrics,
			interval: *mInterv,
			frame:    *trFrame,
		}
		fo := faultOpts{spec: *faults, seed: *faultSeed, timeout: *timeout, straggler: sim.Cycle(*stragglerW)}
		so := scaleOpts{topology: *topo, compAlg: *compAlg, radixK: *radixK}
		if err := runSingle(*scheme, *bench, *gpus, *engineW, *scale, *ideal, *verify, *fabSum, *pngOut, *runrecOut, to, fo, so); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func schemeByName(name string, cfg *multigpu.Config) (sfr.Scheme, error) {
	switch name {
	case "duplication":
		return sfr.Duplication{}, nil
	case "gpupd":
		return sfr.GPUpd{}, nil
	case "chopin":
		return sfr.CHOPIN{}, nil
	case "chopin-naive":
		cfg.UseCompScheduler = false
		return sfr.CHOPIN{}, nil
	case "chopin-rr":
		cfg.UseCompScheduler = false
		return sfr.CHOPIN{RoundRobin: true}, nil
	case "chopin-reorder":
		return sfr.CHOPIN{Reorder: true}, nil
	case "sort-middle":
		return sfr.SortMiddle{}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

// traceOpts carries the single-run observability flags.
type traceOpts struct {
	timeline string // Perfetto/Chrome trace-event JSON output path
	metrics  string // sampled-counter CSV output path
	interval int64  // counter sampling interval in cycles
	frame    int    // which frame repeat to trace (steady-state capture)
}

func (t traceOpts) enabled() bool { return t.timeline != "" || t.metrics != "" }

// faultOpts carries the single-run fault-injection, straggler-watchdog, and
// timeout flags.
type faultOpts struct {
	spec      string
	seed      int64
	timeout   time.Duration
	straggler sim.Cycle
}

// scaleOpts carries the single-run scale-out flags: fabric topology and
// composition exchange plan. Empty strings keep the paper's defaults
// (crossbar, direct send).
type scaleOpts struct {
	topology string
	compAlg  string
	radixK   int
}

// apply resolves the flags into cfg, rejecting unknown names.
func (s scaleOpts) apply(cfg *multigpu.Config) error {
	if s.topology != "" {
		kind, err := interconnect.ParseTopologyKind(s.topology)
		if err != nil {
			return &UsageError{Flag: "topology", Reason: err.Error()}
		}
		cfg.Link.Topology = kind
	}
	if s.compAlg != "" {
		alg, err := plan.ParseAlgorithm(s.compAlg)
		if err != nil {
			return &UsageError{Flag: "comp-alg", Reason: err.Error()}
		}
		cfg.CompAlg = alg
	}
	cfg.RadixK = s.radixK
	return nil
}

// serveMonitor starts the live sweep monitor on addr in the background.
func serveMonitor(addr string) (*live.Monitor, error) {
	mon := live.New()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live monitor: %w", err)
	}
	srv := &http.Server{Handler: mon.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "live monitor listening on http://%s\n", ln.Addr())
	return mon, nil
}

func runSingle(scheme, bench string, gpus, engineWorkers int, scale float64, ideal, verify, fabricSummary bool, pngOut, recOut string, to traceOpts, fo faultOpts, so scaleOpts) error {
	b, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	fr := trace.Generate(b, scale)
	cfg := multigpu.DefaultConfig()
	cfg.NumGPUs = gpus
	cfg.EngineWorkers = engineWorkers
	cfg.Link.Ideal = ideal
	cfg.Verify = verify
	cfg.FabricTelemetry = fabricSummary
	cfg.GroupThreshold = max(16, int(float64(cfg.GroupThreshold)*scale))
	if err := so.apply(&cfg); err != nil {
		return err
	}
	if fo.spec != "" {
		if fo.spec == "random" {
			cfg.Faults = fault.RandomPlan(fo.seed, gpus)
		} else {
			fp, err := fault.ParseSpec(fo.spec, fo.seed)
			if err != nil {
				return err
			}
			cfg.Faults = fp
		}
	}
	cfg.StragglerWindow = fo.straggler
	if fo.timeout > 0 {
		deadline := time.Now().Add(fo.timeout)
		cfg.Cancel = func() bool { return time.Now().After(deadline) }
	}
	s, err := schemeByName(scheme, &cfg)
	if err != nil {
		return err
	}
	var tr *obs.Tracer
	if to.enabled() {
		// A single run simulates one frame; -trace-frame N repeats it N+1
		// times on fresh systems and attaches the tracer only to repeat N.
		// The simulator is deterministic, so earlier repeats exist purely to
		// mirror a "skip warm-up frames" capture workflow.
		for i := 0; i < to.frame; i++ {
			warm, err := multigpu.New(cfg, fr.Width, fr.Height)
			if err != nil {
				return err
			}
			if _, err := s.Run(warm, fr); err != nil {
				return fmt.Errorf("warm-up repeat %d: %w", i, err)
			}
		}
		tr = obs.New()
		// The interval is validated positive at flag-parse time.
		tr.SetSampleInterval(to.interval)
		cfg.Tracer = tr
	}
	sys, err := multigpu.New(cfg, fr.Width, fr.Height)
	if err != nil {
		return err
	}
	st, err := s.Run(sys, fr)
	if err != nil {
		if st != nil {
			printFaultSummary(sys, st)
		}
		return err
	}
	if verify {
		if len(st.Violations) > 0 {
			for _, v := range st.Violations {
				fmt.Fprintln(os.Stderr, "VIOLATION:", v)
			}
			return fmt.Errorf("%d invariant violation(s)", len(st.Violations))
		}
		fmt.Println("verification: all invariants held")
	}

	fmt.Printf("%s on %s (%d GPUs, scale %.2f, %d draws, %d triangles)\n",
		st.Scheme, bench, gpus, scale, len(fr.Draws), fr.TriangleCount())
	fmt.Printf("total cycles: %d\n", st.TotalCycles)
	for _, p := range stats.Phases() {
		if st.Phase(p) > 0 {
			fmt.Printf("  %-13s %12d cycles (%.1f%%)\n", p, st.Phase(p),
				100*float64(st.Phase(p))/float64(st.TotalCycles))
		}
	}
	fmt.Printf("traffic: composition %s MB, primitive-distribution %s MB, sync %s MB, control %s MB\n",
		stats.MB(st.CompositionBytes), stats.MB(st.PrimDistBytes),
		stats.MB(st.SyncBytes), stats.MB(st.ControlBytes))
	fmt.Printf("fragments: generated %d, depth-passed %d, shaded %d\n",
		st.Raster.FragsGenerated, st.Raster.DepthPassed(), st.Raster.FragsShaded)
	if st.GroupsTotal > 0 {
		fmt.Printf("composition groups: %d total, %d accelerated (%d triangles)\n",
			st.GroupsTotal, st.GroupsAccelerated, st.TrianglesAccelerated)
	}
	printFaultSummary(sys, st)
	if fabricSummary {
		printFabricSummary(sys, st)
	}
	if recOut != "" {
		seed := int64(0)
		if fo.spec != "" {
			seed = fo.seed
		}
		rec := runrec.NewRecorder(runrec.Meta{
			Tool: "chopinsim", GitRev: gitRev(), Scale: scale, Seed: seed,
			Benchmarks: []string{bench}, Experiments: []string{"single"},
		})
		row := runrec.FromStats(runrec.Key{Experiment: "single", Scheme: st.Scheme,
			Bench: bench, GPUs: gpus}, cfg.Fingerprint(), st)
		for _, c := range cfg.Tracer.CounterFinals() {
			row.Metrics[runrec.CounterMetric(c.Pid, c.Name)] = float64(c.Val)
		}
		if tr != nil {
			cm, err := causalMetrics(tr)
			if err != nil {
				return fmt.Errorf("causal analysis of captured timeline: %w", err)
			}
			for k, v := range cm {
				row.Metrics[k] = v
			}
		}
		rec.Add(row)
		if err := rec.Record().WriteFile(recOut); err != nil {
			return err
		}
		fmt.Printf("wrote run record %s (1 row)\n", recOut)
	}
	img := sys.AssembleImage(0)
	fmt.Printf("display image checksum: %016x\n", img.Checksum())
	if pngOut != "" {
		f, err := os.Create(pngOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := img.WritePNG(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", pngOut)
	}
	if tr != nil {
		if err := writeTrace(tr, st, to); err != nil {
			return err
		}
	}
	return nil
}

// printFaultSummary reports injected-fault and recovery activity, including
// downed fabric links and the reroute outcome; silent on fault-free runs.
func printFaultSummary(sys *multigpu.System, st *stats.FrameStats) {
	f := st.Faults
	downed := sys.Fabric.DownedLinks()
	if f.Total()+f.Retries+f.Timeouts+f.Lost == 0 && st.GPUsFailed == 0 &&
		len(downed) == 0 && st.PlanRepairs == 0 {
		return
	}
	fmt.Printf("faults: %d injected (drop %d, corrupt %d, dup %d, delay %d); protocol: %d retries, %d timeouts, %d lost\n",
		f.Total(), f.Drops, f.Corrupts, f.Duplicates, f.Delays, f.Retries, f.Timeouts, f.Lost)
	if len(downed) > 0 {
		names := make([]string, len(downed))
		for i, l := range downed {
			names[i] = fmt.Sprintf("%d-%d", l[0], l[1])
		}
		fmt.Printf("links down: %s; reroutes %d, unroutable %d\n",
			strings.Join(names, " "), sys.Fabric.RerouteCount(), sys.Fabric.UnroutableCount())
	}
	if st.GPUsFailed > 0 || st.PlanRepairs > 0 {
		fmt.Printf("recovery: %d GPU(s) failed, %d exchange-plan repair(s); degraded-mode recovery took %d cycles\n",
			st.GPUsFailed, st.PlanRepairs, st.RecoveryCycles)
	}
}

// printFabricSummary reports the fabric link telemetry of a single run: the
// digest captured into FrameStats plus the hottest links from the live
// collector. Fully deterministic — same run, same bytes.
func printFabricSummary(sys *multigpu.System, st *stats.FrameStats) {
	lt := sys.Fabric.LinkTelemetry()
	if lt == nil || st.Fabric == nil {
		fmt.Println("fabric telemetry: not available (ideal fabric has no links to meter)")
		return
	}
	fb := st.Fabric
	fmt.Printf("fabric: %d links (%d active), %d transfers, mean hops %.2f\n",
		fb.Links, fb.ActiveLinks, fb.Transfers, fb.MeanHops)
	fmt.Printf("transfer latency: p50 %d, p90 %d, p99 %d cycles; link-wait %d cycles total\n",
		fb.LatencyP50, fb.LatencyP90, fb.LatencyP99, fb.QueuedCycles)
	top := lt.Top(5)
	if len(top) == 0 {
		fmt.Println("no link carried traffic")
		return
	}
	fmt.Println("hottest links:")
	tbl := stats.NewTable("link", "busy", "util%", "MB", "transfers", "queued", "retries")
	for _, l := range top {
		util := 0.0
		if st.TotalCycles > 0 {
			util = 100 * float64(l.Busy) / float64(st.TotalCycles)
		}
		tbl.AddRow(l.Name, fmt.Sprintf("%d", l.Busy), fmt.Sprintf("%.1f", util),
			stats.MB(l.Bytes), fmt.Sprintf("%d", l.Transfers),
			fmt.Sprintf("%d", l.Queued), fmt.Sprintf("%d", l.Retries))
	}
	fmt.Print(tbl.String())
}

// causalMetrics round-trips the captured timeline through the exporter and
// the causal engine (exactly what chopintrace -critical does) and returns
// the bottleneck-attribution metrics recorded into run records: the causal
// makespan and critical path, per-category attribution (attr_<category>),
// and per-category what-if projected makespans (whatif_<category>). A trace
// with no category-tagged spans yields no metrics rather than an error, so
// pre-causal capture paths keep working.
func causalMetrics(tr *obs.Tracer) (map[string]float64, error) {
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return nil, err
	}
	tf, err := obs.Load(&buf)
	if err != nil {
		return nil, err
	}
	rep, err := causal.AnalyzeTrace(tf)
	if errors.Is(err, causal.ErrNoCategories) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	m := map[string]float64{
		"causal_makespan":      float64(rep.Makespan),
		"causal_critical_path": float64(rep.CriticalPath),
	}
	for _, a := range rep.Attribution {
		m["attr_"+a.Category] = float64(a.Cycles)
	}
	for _, w := range rep.WhatIf {
		m["whatif_"+w.Category] = float64(w.Makespan)
	}
	return m, nil
}

// writeTrace exports the captured timeline/metrics and prints the
// phase-reconciliation check: the span totals on the sim/phases track must
// equal the per-phase cycle attribution in FrameStats.
func writeTrace(tr *obs.Tracer, st *stats.FrameStats, to traceOpts) error {
	if to.timeline != "" {
		f, err := os.Create(to.timeline)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote timeline %s (%d events; load in https://ui.perfetto.dev)\n",
			to.timeline, len(tr.Events()))
	}
	if to.metrics != "" {
		f, err := os.Create(to.metrics)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote metrics %s\n", to.metrics)
	}
	totals := tr.SpanTotals(obs.SimProcName, "phases")
	ok := true
	for _, p := range stats.Phases() {
		if got, want := totals[p.String()], st.Phase(p); got != want {
			fmt.Printf("phase reconciliation MISMATCH: %s spans %d cycles, stats %d cycles\n", p, got, want)
			ok = false
		}
	}
	if ok {
		fmt.Println("phase reconciliation: span totals match stats.FrameStats phase cycles")
	}
	if to.frame > 0 {
		fmt.Printf("traced frame repeat %d (after %d untraced warm-up repeats)\n", to.frame, to.frame)
	}
	return nil
}
