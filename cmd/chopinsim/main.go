// Command chopinsim runs the CHOPIN multi-GPU rendering simulator: single
// scheme simulations or whole paper experiments.
//
// Usage:
//
//	chopinsim -list                         list experiments
//	chopinsim -exp fig13 [-scale 0.25]      reproduce a paper figure/table
//	chopinsim -exp all                      run every experiment
//	chopinsim -bench cry -scheme chopin     simulate one scheme on one trace
//	chopinsim -verify -bench cry -scheme chopin   run with invariant checks
//	chopinsim -selfcheck                    determinism self-check
//	chopinsim -update-golden                re-record golden experiment outputs
//
// Trace scale 1.0 reproduces the paper's Table III workload sizes; smaller
// scales shrink everything proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"chopin/internal/experiments"
	"chopin/internal/multigpu"
	"chopin/internal/sfr"
	"chopin/internal/stats"
	"chopin/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		scale   = flag.Float64("scale", 0.25, "trace scale in (0,1]; 1.0 = paper-size workloads")
		benches = flag.String("benches", "", "comma-separated benchmark subset (default: all eight)")
		scheme  = flag.String("scheme", "", "single run: duplication | gpupd | sort-middle | chopin | chopin-naive | chopin-rr | chopin-reorder")
		bench   = flag.String("bench", "cod2", "single run: benchmark name")
		gpus    = flag.Int("gpus", 8, "single run: GPU count")
		ideal   = flag.Bool("ideal", false, "single run: idealized inter-GPU links")
		pngOut  = flag.String("png", "", "single run: write the rendered frame to this PNG file")
		verify  = flag.Bool("verify", false, "attach the runtime invariant checker to every simulation")
		update  = flag.Bool("update-golden", false, "re-record the golden experiment outputs and exit")
		gdir    = flag.String("golden-dir", "internal/experiments/testdata/golden", "golden output directory (with -update-golden)")
		self    = flag.Bool("selfcheck", false, "run the determinism self-check (sequential vs parallel) and exit")
		verbose = flag.Bool("v", false, "stream per-simulation progress")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
		workers = flag.Int("workers", 0, "concurrent simulations per experiment (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}()
	}

	switch {
	case *update:
		opt := experiments.GoldenOptions()
		opt.Verbose = *verbose
		opt.Out = os.Stderr
		opt.Workers = *workers
		if err := experiments.UpdateGolden(*gdir, opt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("re-recorded %d golden files in %s\n", len(experiments.IDs()), *gdir)
	case *self:
		opt := experiments.Options{Scale: *scale, Verify: *verify, Verbose: *verbose, Out: os.Stderr, Workers: *workers}
		if *benches != "" {
			opt.Benchmarks = strings.Split(*benches, ",")
		}
		digests, err := experiments.CheckDeterminism(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, d := range digests {
			fmt.Printf("%-12s %-6s n=%-2d %12d cycles  image %016x\n",
				d.Scheme, d.Bench, d.GPUs, d.Cycles, d.Image)
		}
		fmt.Printf("determinism self-check passed: %d simulations identical sequentially and in parallel\n", len(digests))
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
	case *exp != "":
		opt := experiments.Options{
			Scale:   *scale,
			Verify:  *verify,
			Verbose: *verbose,
			Out:     os.Stderr,
			Workers: *workers,
		}
		if *benches != "" {
			opt.Benchmarks = strings.Split(*benches, ",")
		}
		ids := []string{*exp}
		if *exp == "all" {
			ids = experiments.IDs()
		}
		for _, id := range ids {
			res, err := experiments.Run(id, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println(res)
		}
	case *scheme != "":
		if err := runSingle(*scheme, *bench, *gpus, *scale, *ideal, *verify, *pngOut); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func schemeByName(name string, cfg *multigpu.Config) (sfr.Scheme, error) {
	switch name {
	case "duplication":
		return sfr.Duplication{}, nil
	case "gpupd":
		return sfr.GPUpd{}, nil
	case "chopin":
		return sfr.CHOPIN{}, nil
	case "chopin-naive":
		cfg.UseCompScheduler = false
		return sfr.CHOPIN{}, nil
	case "chopin-rr":
		cfg.UseCompScheduler = false
		return sfr.CHOPIN{RoundRobin: true}, nil
	case "chopin-reorder":
		return sfr.CHOPIN{Reorder: true}, nil
	case "sort-middle":
		return sfr.SortMiddle{}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

func runSingle(scheme, bench string, gpus int, scale float64, ideal, verify bool, pngOut string) error {
	b, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	fr := trace.Generate(b, scale)
	cfg := multigpu.DefaultConfig()
	cfg.NumGPUs = gpus
	cfg.Link.Ideal = ideal
	cfg.Verify = verify
	cfg.GroupThreshold = max(16, int(float64(cfg.GroupThreshold)*scale))
	s, err := schemeByName(scheme, &cfg)
	if err != nil {
		return err
	}
	sys := multigpu.New(cfg, fr.Width, fr.Height)
	st := s.Run(sys, fr)
	if verify {
		if len(st.Violations) > 0 {
			for _, v := range st.Violations {
				fmt.Fprintln(os.Stderr, "VIOLATION:", v)
			}
			return fmt.Errorf("%d invariant violation(s)", len(st.Violations))
		}
		fmt.Println("verification: all invariants held")
	}

	fmt.Printf("%s on %s (%d GPUs, scale %.2f, %d draws, %d triangles)\n",
		st.Scheme, bench, gpus, scale, len(fr.Draws), fr.TriangleCount())
	fmt.Printf("total cycles: %d\n", st.TotalCycles)
	for _, p := range stats.Phases() {
		if st.Phase(p) > 0 {
			fmt.Printf("  %-13s %12d cycles (%.1f%%)\n", p, st.Phase(p),
				100*float64(st.Phase(p))/float64(st.TotalCycles))
		}
	}
	fmt.Printf("traffic: composition %s MB, primitive-distribution %s MB, sync %s MB, control %s MB\n",
		stats.MB(st.CompositionBytes), stats.MB(st.PrimDistBytes),
		stats.MB(st.SyncBytes), stats.MB(st.ControlBytes))
	fmt.Printf("fragments: generated %d, depth-passed %d, shaded %d\n",
		st.Raster.FragsGenerated, st.Raster.DepthPassed(), st.Raster.FragsShaded)
	if st.GroupsTotal > 0 {
		fmt.Printf("composition groups: %d total, %d accelerated (%d triangles)\n",
			st.GroupsTotal, st.GroupsAccelerated, st.TrianglesAccelerated)
	}
	img := sys.AssembleImage(0)
	fmt.Printf("display image checksum: %016x\n", img.Checksum())
	if pngOut != "" {
		f, err := os.Create(pngOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := img.WritePNG(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", pngOut)
	}
	return nil
}
