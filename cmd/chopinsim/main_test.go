package main

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateMetricsInterval pins the -metrics-interval contract: zero and
// negative intervals are rejected with a typed usage error (exit 2 in
// main), positive intervals pass.
func TestValidateMetricsInterval(t *testing.T) {
	for _, tc := range []struct {
		v      int64
		wantOK bool
	}{
		{v: 1, wantOK: true},
		{v: 1000, wantOK: true},
		{v: 0, wantOK: false},
		{v: -5, wantOK: false},
	} {
		err := validateMetricsInterval(tc.v)
		if tc.wantOK {
			if err != nil {
				t.Errorf("validateMetricsInterval(%d) = %v, want nil", tc.v, err)
			}
			continue
		}
		var ue *UsageError
		if !errors.As(err, &ue) {
			t.Errorf("validateMetricsInterval(%d) = %v, want *UsageError", tc.v, err)
			continue
		}
		if ue.Flag != "metrics-interval" {
			t.Errorf("UsageError.Flag = %q", ue.Flag)
		}
		if !strings.Contains(ue.Error(), "invalid -metrics-interval") {
			t.Errorf("UsageError message = %q", ue.Error())
		}
	}
}

func TestGitRevNeverEmpty(t *testing.T) {
	// Test binaries carry no VCS stamp; the fallback must still be a
	// non-empty, record-stable string.
	if rev := gitRev(); rev == "" {
		t.Fatal("gitRev returned an empty revision")
	}
}
