// Command chopinstat diffs two run records (see internal/runrec): it aligns
// rows by (experiment, cell, scheme, bench, GPU count), reports per-metric
// deltas, per-experiment geomean cycle ratios, and rows that appeared or
// vanished, and — with -gate — applies per-metric regression thresholds and
// exits non-zero when any is crossed.
//
// Usage:
//
//	chopinstat OLD.json NEW.json              human diff summary
//	chopinstat -top 30 OLD NEW                show the 30 largest deltas
//	chopinstat -gate OLD NEW                  gate on the default thresholds
//	chopinstat -gate -thresholds t.txt OLD NEW  gate on a threshold file
//
// OLD and NEW are record files or directories of *.json records (merged).
// Exit status: 0 clean, 1 gate regression (or runtime error), 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"chopin/internal/runrec"
	"chopin/internal/stats"
)

// GateError reports a failed regression gate; it maps to exit status 1.
type GateError struct {
	Regressions []runrec.Regression
}

func (e *GateError) Error() string {
	return fmt.Sprintf("gate failed: %d regression(s)", len(e.Regressions))
}

func main() {
	var (
		gate    = flag.Bool("gate", false, "apply regression thresholds and exit non-zero on any crossing")
		thrPath = flag.String("thresholds", "", "threshold file (one \"<metric-pattern> <max-rel-increase>\" per line; default gates total_cycles at 0)")
		top     = flag.Int("top", 15, "number of largest relative deltas to show")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: chopinstat [-gate] [-thresholds file] [-top k] OLD NEW")
		os.Exit(2)
	}
	err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *thrPath, *gate, *top)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// run loads, diffs, prints, and optionally gates. Split from main so tests
// can drive both gate outcomes without spawning a process.
func run(w io.Writer, oldPath, newPath, thrPath string, gate bool, top int) error {
	oldRec, err := runrec.LoadPath(oldPath)
	if err != nil {
		return err
	}
	newRec, err := runrec.LoadPath(newPath)
	if err != nil {
		return err
	}
	ts := runrec.DefaultThresholds()
	if thrPath != "" {
		f, err := os.Open(thrPath)
		if err != nil {
			return err
		}
		ts, err = runrec.ParseThresholds(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	d := runrec.Compare(oldRec, newRec)
	printDiff(w, oldRec, newRec, d, top)

	if !gate {
		return nil
	}
	regs := d.Gate(ts)
	if len(regs) == 0 {
		fmt.Fprintf(w, "\nGATE PASS: %d aligned rows within thresholds\n", d.Aligned)
		return nil
	}
	fmt.Fprintf(w, "\nGATE FAIL: %d regression(s)\n", len(regs))
	for _, r := range regs {
		fmt.Fprintln(w, "  REGRESSION", r)
	}
	return &GateError{Regressions: regs}
}

func printDiff(w io.Writer, oldRec, newRec *runrec.Record, d *runrec.Diff, top int) {
	fmt.Fprintf(w, "old: %s %s (scale %.2f, %d rows)\n",
		oldRec.Meta.Tool, oldRec.Meta.GitRev, oldRec.Meta.Scale, len(oldRec.Rows))
	fmt.Fprintf(w, "new: %s %s (scale %.2f, %d rows)\n",
		newRec.Meta.Tool, newRec.Meta.GitRev, newRec.Meta.Scale, len(newRec.Rows))
	fmt.Fprintf(w, "aligned %d rows; %d added, %d missing, %d with config drift; %d metric deltas\n",
		d.Aligned, len(d.Added), len(d.Missing), len(d.ConfigChanged), len(d.Deltas))
	for _, k := range d.Added {
		fmt.Fprintln(w, "  added  ", k)
	}
	for _, k := range d.Missing {
		fmt.Fprintln(w, "  missing", k)
	}
	for _, k := range d.ConfigChanged {
		fmt.Fprintln(w, "  config drift", k)
	}

	if len(d.CycleRatio) > 0 {
		fmt.Fprintln(w, "\ngeomean cycle ratio (old/new; >1 means the new record is faster):")
		tbl := stats.NewTable("experiment", "ratio")
		var exps []string
		for exp := range d.CycleRatio {
			exps = append(exps, exp)
		}
		sort.Strings(exps)
		for _, exp := range exps {
			tbl.AddRow(exp, fmt.Sprintf("%.4f", d.CycleRatio[exp]))
		}
		fmt.Fprint(w, tbl)
	}

	if len(d.Deltas) > 0 && top > 0 {
		deltas := make([]runrec.Delta, len(d.Deltas))
		copy(deltas, d.Deltas)
		sort.SliceStable(deltas, func(a, b int) bool {
			return math.Abs(deltas[a].Rel) > math.Abs(deltas[b].Rel)
		})
		if len(deltas) > top {
			deltas = deltas[:top]
		}
		fmt.Fprintf(w, "\ntop %d deltas by relative change:\n", len(deltas))
		tbl := stats.NewTable("row", "metric", "old", "new", "rel")
		for _, dl := range deltas {
			tbl.AddRow(dl.Key.String(), dl.Metric,
				fmt.Sprintf("%.0f", dl.Old), fmt.Sprintf("%.0f", dl.New),
				fmt.Sprintf("%+.2f%%", 100*dl.Rel))
		}
		fmt.Fprint(w, tbl)
	}
}
