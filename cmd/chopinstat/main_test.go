package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chopin/internal/runrec"
)

func writeRecord(t *testing.T, dir, name string, rec *runrec.Record) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRecord(cycles float64) *runrec.Record {
	rec := runrec.NewRecorder(runrec.Meta{Tool: "test", GitRev: "abc", Scale: 0.03})
	rec.Add(runrec.Row{
		Key:    runrec.Key{Experiment: "fig19", Scheme: "CHOPIN", Bench: "cod2", GPUs: 8},
		Config: "feedfacefeedface",
		Metrics: runrec.Metrics{
			"total_cycles": cycles, "phase_composition": cycles / 10,
		},
	})
	rec.Add(runrec.Row{
		Key:    runrec.Key{Experiment: "fig19", Scheme: "Duplication", Bench: "cod2", GPUs: 8},
		Config: "feedfacefeedface",
		Metrics: runrec.Metrics{
			"total_cycles": 2000, "phase_composition": 0,
		},
	})
	return rec.Record()
}

// TestGatePassesOnIdenticalRecords drives the full run() path: two
// identical records must diff clean and pass the gate (exit 0 in main).
func TestGatePassesOnIdenticalRecords(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", testRecord(1000))
	new_ := writeRecord(t, dir, "new.json", testRecord(1000))
	var out bytes.Buffer
	if err := run(&out, old, new_, "", true, 10); err != nil {
		t.Fatalf("run = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "GATE PASS") {
		t.Fatalf("output missing GATE PASS:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "aligned 2 rows") {
		t.Fatalf("output missing alignment summary:\n%s", out.String())
	}
}

// TestGateFailsOnInjectedRegression: a cycle increase on an aligned row
// must surface as a *GateError (exit 1 in main).
func TestGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", testRecord(1000))
	new_ := writeRecord(t, dir, "new.json", testRecord(1100))
	var out bytes.Buffer
	err := run(&out, old, new_, "", true, 10)
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("run = %v, want *GateError\n%s", err, out.String())
	}
	if len(ge.Regressions) == 0 || ge.Regressions[0].Metric != "total_cycles" {
		t.Fatalf("regressions = %v", ge.Regressions)
	}
	if !strings.Contains(out.String(), "GATE FAIL") || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output missing gate verdict:\n%s", out.String())
	}
}

// TestThresholdFileLoosensGate: the same regression passes under a
// threshold file that tolerates it.
func TestThresholdFileLoosensGate(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", testRecord(1000))
	new_ := writeRecord(t, dir, "new.json", testRecord(1100))
	thr := filepath.Join(dir, "thresholds.txt")
	if err := os.WriteFile(thr, []byte("total_cycles 0.2\nphase_* 0.2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, old, new_, thr, true, 10); err != nil {
		t.Fatalf("run with loose thresholds = %v\n%s", err, out.String())
	}

	// A malformed threshold file is a hard error, not a silent default.
	if err := os.WriteFile(thr, []byte("total_cycles banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, old, new_, thr, true, 10); err == nil {
		t.Fatal("malformed threshold file should fail")
	}
}

// TestDiffWithoutGateNeverErrors: without -gate the same regression is
// reported but the run succeeds.
func TestDiffWithoutGateNeverErrors(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", testRecord(1000))
	new_ := writeRecord(t, dir, "new.json", testRecord(1100))
	var out bytes.Buffer
	if err := run(&out, old, new_, "", false, 10); err != nil {
		t.Fatalf("run without gate = %v", err)
	}
	if !strings.Contains(out.String(), "total_cycles") || !strings.Contains(out.String(), "geomean cycle ratio") {
		t.Fatalf("diff output incomplete:\n%s", out.String())
	}
}
