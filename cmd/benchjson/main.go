// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON report: one record per benchmark with ns/op, B/op, allocs/op
// and any custom b.ReportMetric values. CI runs the reduced experiment
// benchmark suite through it and uploads the result (BENCH_2.json) so
// per-commit performance history is machine-readable.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem heap numbers; absent units
	// stay zero.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	rec := Record{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[unit] = v
		}
	}
	return rec, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	recs := []Record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so the CI log keeps the human-readable output.
		fmt.Println(line)
		if rec, ok := parseLine(line); ok {
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark records to %s\n", len(recs), *out)
}
