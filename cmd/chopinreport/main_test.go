package main

import (
	"encoding/xml"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chopin/internal/runrec"
)

func TestRunWritesWellFormedReport(t *testing.T) {
	dir := t.TempDir()
	rec := runrec.NewRecorder(runrec.Meta{Tool: "test", GitRev: "abc", Scale: 0.03,
		Experiments: []string{"fig19"}})
	for _, gpus := range []int{2, 4, 8} {
		for _, scheme := range []string{"Duplication", "CHOPIN"} {
			cycles := 1000.0 * float64(gpus)
			if scheme == "CHOPIN" {
				cycles *= 0.8
			}
			rec.Add(runrec.Row{
				Key:     runrec.Key{Experiment: "fig19", Scheme: scheme, Bench: "cod2", GPUs: gpus},
				Config:  "feedfacefeedface",
				Metrics: runrec.Metrics{"total_cycles": cycles, "phase_normal": cycles / 2},
			})
		}
	}
	in := filepath.Join(dir, "rec.json")
	if err := rec.Record().WriteFile(in); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "report.html")
	if err := run(out, "test report", []string{in}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	if !strings.Contains(html, "test report") || !strings.Contains(html, "<polyline") {
		t.Fatalf("report missing content:\n%s", html[:min(len(html), 400)])
	}
	dec := xml.NewDecoder(strings.NewReader(html))
	dec.Strict = true
	dec.Entity = xml.HTMLEntity
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("report is not well-formed: %v", err)
		}
	}
}

func TestRunRejectsConflictingRecords(t *testing.T) {
	dir := t.TempDir()
	rec := runrec.NewRecorder(runrec.Meta{Tool: "test"})
	rec.Add(runrec.Row{
		Key:     runrec.Key{Experiment: "e", Scheme: "s", Bench: "b", GPUs: 1},
		Metrics: runrec.Metrics{"total_cycles": 1},
	})
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, p := range []string{a, b} {
		if err := rec.Record().WriteFile(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(filepath.Join(dir, "out.html"), "", []string{a, b}); err == nil {
		t.Fatal("duplicate row keys across inputs should fail")
	}
}
