// Command chopinreport renders a run record (see internal/runrec) as a
// self-contained HTML report with inline-SVG figures: a speedup-vs-GPU-count
// curve and a phase breakdown per experiment, plus fault and recovery costs
// when the record carries them. The output embeds no scripts and fetches no
// external assets, so it can be archived or attached as a CI artifact as-is.
//
// Usage:
//
//	chopinreport -o report.html RECORD...
//
// Each RECORD is a run-record file or a directory of *.json records; all
// inputs are merged (duplicate row keys are an error).
package main

import (
	"flag"
	"fmt"
	"os"

	"chopin/internal/runrec"
)

func main() {
	var (
		out   = flag.String("o", "report.html", "output HTML file")
		title = flag.String("title", "CHOPIN run report", "report title")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: chopinreport [-o report.html] [-title t] RECORD...")
		os.Exit(2)
	}
	if err := run(*out, *title, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(out, title string, paths []string) error {
	var recs []*runrec.Record
	for _, p := range paths {
		rec, err := runrec.LoadPath(p)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	rec, err := runrec.Merge(recs)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := runrec.WriteReport(f, rec, title); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %d experiments)\n", out, len(rec.Rows), len(rec.Meta.Experiments))
	return nil
}
