// Customscheduler: plug a user-defined draw-command scheduler into the
// CHOPIN pipeline and race it against the built-in policies.
//
// The paper's Fig. 10 scheduler balances *remaining triangles*. This
// example implements an alternative the paper discusses and rejects
// (Section IV-D): a static estimated-time scheduler in the style of
// Wimmer & Wonka, t = c1·vertices + c2·pixels, with constants sampled
// offline — and shows how the library makes such what-if studies a few
// dozen lines.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"chopin"
)

// exampleScale returns the workload scale: def by default, overridable via
// the CHOPIN_EXAMPLE_SCALE environment variable (the repository's smoke
// test uses a tiny scale to run every example quickly).
func exampleScale(def float64) float64 {
	if s := os.Getenv("CHOPIN_EXAMPLE_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return def
}

// estimatedTimeScheduler assigns each draw to the GPU with the least
// estimated outstanding work, predicting a draw's cost purely from its
// triangle count with fixed constants (no dynamic execution state).
type estimatedTimeScheduler struct {
	gpus    int
	pending []float64 // estimated outstanding cycles per GPU
	// c1 is the assumed cycles per triangle (vertex + pixel work folded
	// in), the kind of static constant OO-VR samples up front.
	c1 float64
}

func newEstimatedTime(gpus int, c1 float64) *estimatedTimeScheduler {
	return &estimatedTimeScheduler{gpus: gpus, pending: make([]float64, gpus), c1: c1}
}

// Assign implements chopin.DrawScheduler.
func (s *estimatedTimeScheduler) Assign(tris int, now int64) int {
	best := 0
	for g := 1; g < s.gpus; g++ {
		if s.pending[g] < s.pending[best] {
			best = g
		}
	}
	s.pending[best] += s.c1 * float64(tris)
	return best
}

// Name implements chopin.DrawScheduler.
func (s *estimatedTimeScheduler) Name() string { return "estimated-time" }

func main() {
	scale := exampleScale(0.25)
	fr, err := chopin.GenerateTrace("nfs", scale)
	if err != nil {
		log.Fatal(err)
	}
	threshold := chopin.ScaledThreshold(4096, scale)

	base, err := chopin.Simulate(chopin.Config{
		Scheme:         chopin.SchemeDuplication,
		GroupThreshold: threshold,
	}, fr)
	if err != nil {
		log.Fatal(err)
	}

	runs := []struct {
		label string
		cfg   chopin.Config
	}{
		{"CHOPIN round-robin", chopin.Config{Scheme: chopin.SchemeCHOPINRoundRobin, GroupThreshold: threshold}},
		{"CHOPIN least-remaining-triangles (paper)", chopin.Config{Scheme: chopin.SchemeCHOPIN, GroupThreshold: threshold}},
		{"CHOPIN custom estimated-time", chopin.Config{
			Scheme:          chopin.SchemeCHOPIN,
			GroupThreshold:  threshold,
			CustomScheduler: newEstimatedTime(8, 6.0),
		}},
	}

	ref := chopin.ReferenceImage(fr)
	fmt.Printf("nfs at scale %.2f — baseline duplication: %d cycles\n\n", scale, base.Cycles)
	for _, r := range runs {
		rep, err := chopin.Simulate(r.cfg, fr)
		if err != nil {
			log.Fatal(err)
		}
		ok := rep.Image().Equal(ref, 1e-9)
		fmt.Printf("%-42s %12d cycles  speedup %.3fx  image-correct=%v\n",
			r.label, rep.Cycles, rep.SpeedupOver(base), ok)
	}
	fmt.Println("\nany DrawScheduler implementation can be plugged in via Config.CustomScheduler")
}
