// Composition: use the parallel image-composition library standalone, the
// way a scientific-visualization cluster would (paper Section II-D).
//
// Eight "GPUs" each render a slice of a synthetic particle volume into
// their own full-screen sub-image; the example then composes the
// sub-images with direct-send, binary-swap, and radix-k, verifies all
// three produce the identical image, and compares their communication
// costs — the trade-off CHOPIN's composition scheduler navigates.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"chopin/internal/colorspace"
	"chopin/internal/composite"
	"chopin/internal/framebuffer"
)

const (
	gpus   = 16
	width  = 640
	height = 480
)

// renderSubImage renders GPU g's slab of a randomly scattered particle
// cloud: opaque splats at depths within the slab.
func renderSubImage(g int) *framebuffer.Buffer {
	fb := framebuffer.MustNew(width, height)
	fb.ClearDirty()
	rng := rand.New(rand.NewSource(int64(g) + 1))
	zLo := float64(g) / gpus
	zHi := float64(g+1) / gpus
	for p := 0; p < 4000; p++ {
		cx, cy := rng.Intn(width), rng.Intn(height)
		z := zLo + (zHi-zLo)*rng.Float64()
		r := 1 + rng.Intn(4)
		col := colorspace.Opaque(0.3+0.7*rng.Float64(), 0.2+0.6*z, 1-z)
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				x, y := cx+dx, cy+dy
				if dx*dx+dy*dy > r*r || !fb.InBounds(x, y) {
					continue
				}
				if z < fb.DepthAt(x, y) {
					fb.Set(x, y, col)
					fb.SetDepth(x, y, z)
				}
			}
		}
	}
	return fb
}

func main() {
	subs := make([]*framebuffer.Buffer, gpus)
	for g := range subs {
		subs[g] = renderSubImage(g)
	}
	fmt.Printf("composed %d sub-images of %dx%d pixels\n\n", gpus, width, height)

	ref := composite.DepthReference(subs, colorspace.CmpLess)

	type algo struct {
		name string
		run  func() (*framebuffer.Buffer, composite.Traffic, error)
	}
	algos := []algo{
		{"direct-send", func() (*framebuffer.Buffer, composite.Traffic, error) {
			img, tr := composite.DirectSend(subs, colorspace.CmpLess)
			return img, tr, nil
		}},
		{"binary-swap", func() (*framebuffer.Buffer, composite.Traffic, error) {
			return composite.BinarySwap(subs, colorspace.CmpLess)
		}},
		{"radix-k (k=4)", func() (*framebuffer.Buffer, composite.Traffic, error) {
			return composite.RadixK(subs, colorspace.CmpLess, 4)
		}},
	}
	fmt.Printf("%-14s %8s %10s %8s %8s\n", "algorithm", "rounds", "messages", "MB", "correct")
	for _, a := range algos {
		img, tr, err := a.run()
		if err != nil {
			fmt.Printf("%-14s failed: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %8d %10d %8.2f %8v\n",
			a.name, tr.Rounds, tr.Messages, float64(tr.Bytes)/(1<<20), img.Equal(ref, 0))
	}

	// Transparent composition: associativity lets adjacent layers merge in
	// any grouping — the property CHOPIN exploits for transparent groups.
	layers := make([]*framebuffer.Buffer, gpus)
	for g := range layers {
		l := framebuffer.MustNew(width, height)
		rng := rand.New(rand.NewSource(int64(100 + g)))
		for p := 0; p < 2000; p++ {
			x, y := rng.Intn(width), rng.Intn(height)
			l.Set(x, y, colorspace.FromStraight(rng.Float64(), rng.Float64(), 1, 0.4))
		}
		layers[g] = l
	}
	chain := composite.ChainCompose(colorspace.BlendOver, layers)
	tree := composite.TreeCompose(colorspace.BlendOver, layers)
	fmt.Printf("\ntransparent layers: sequential chain vs pairwise tree equal within 1e-9: %v\n",
		chain.Equal(tree, 1e-9))
}
