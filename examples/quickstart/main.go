// Quickstart: simulate one game frame under conventional SFR and under
// CHOPIN on an 8-GPU system, verify both produce the reference image, and
// report the speedup — the library's core loop in ~40 lines.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"chopin"
)

// exampleScale returns the workload scale: def by default, overridable via
// the CHOPIN_EXAMPLE_SCALE environment variable (the repository's smoke
// test uses a tiny scale to run every example quickly).
func exampleScale(def float64) float64 {
	if s := os.Getenv("CHOPIN_EXAMPLE_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return def
}

func main() {
	scale := exampleScale(0.25) // quarter-size workload for a quick run; 1.0 = paper size

	fr, err := chopin.GenerateTrace("cry", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: cry at scale %.2f — %d draw commands, %d triangles, %dx%d\n",
		scale, len(fr.Draws), fr.TriangleCount(), fr.Width, fr.Height)

	threshold := chopin.ScaledThreshold(4096, scale)
	baseline, err := chopin.Simulate(chopin.Config{
		Scheme:         chopin.SchemeDuplication,
		GroupThreshold: threshold,
	}, fr)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := chopin.Simulate(chopin.Config{
		Scheme:         chopin.SchemeCHOPIN,
		GroupThreshold: threshold,
	}, fr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("duplication: %12d cycles\n", baseline.Cycles)
	fmt.Printf("CHOPIN:      %12d cycles\n", fast.Cycles)
	fmt.Printf("speedup:     %.2fx\n", fast.SpeedupOver(baseline))

	// Both schemes must render the exact same image as a single GPU.
	ref := chopin.ReferenceImage(fr)
	for _, r := range []*chopin.Report{baseline, fast} {
		if !r.Image().Equal(ref, 1e-9) {
			log.Fatalf("%s image diverged from the single-GPU reference!", r.Scheme)
		}
	}
	fmt.Println("image check: both schemes match the single-GPU reference pixel-for-pixel")

	fmt.Printf("composition traffic: %.2f MB over %d composition groups (%d accelerated)\n",
		float64(fast.Stats.CompositionBytes)/(1<<20),
		fast.Stats.GroupsTotal, fast.Stats.GroupsAccelerated)
}
