// Scaling: sweep the GPU count from 1 to 16 on one benchmark and compare
// how each rendering scheme's frame time scales — the experiment behind the
// paper's Fig. 19 and its central claim: CHOPIN keeps scaling where
// conventional SFR and GPUpd flatten out.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"chopin"
)

// exampleScale returns the workload scale: def by default, overridable via
// the CHOPIN_EXAMPLE_SCALE environment variable (the repository's smoke
// test uses a tiny scale to run every example quickly).
func exampleScale(def float64) float64 {
	if s := os.Getenv("CHOPIN_EXAMPLE_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return def
}

func main() {
	const bench = "ut3"
	scale := exampleScale(0.25)
	fr, err := chopin.GenerateTrace(bench, scale)
	if err != nil {
		log.Fatal(err)
	}
	threshold := chopin.ScaledThreshold(4096, scale)
	fmt.Printf("%s at scale %.2f: %d draws, %d triangles\n\n", bench, scale, len(fr.Draws), fr.TriangleCount())

	schemes := []chopin.Scheme{chopin.SchemeDuplication, chopin.SchemeGPUpd, chopin.SchemeCHOPIN}
	counts := []int{1, 2, 4, 8, 16}

	// Header.
	fmt.Printf("%-6s", "GPUs")
	for _, s := range schemes {
		fmt.Printf(" %22s", s)
	}
	fmt.Println()

	single := map[chopin.Scheme]int64{}
	for _, n := range counts {
		fmt.Printf("%-6d", n)
		for _, s := range schemes {
			rep, err := chopin.Simulate(chopin.Config{
				Scheme:         s,
				GPUs:           n,
				GroupThreshold: threshold,
			}, fr)
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				single[s] = rep.Cycles
			}
			fmt.Printf(" %12d (%5.2fx)", rep.Cycles, float64(single[s])/float64(rep.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\n(speedups are relative to each scheme's own 1-GPU run)")
}
