// Animation: render a short camera-path sequence, write each frame as a
// PNG, and compare AFR against CHOPIN-SFR on the same sequence — the
// average-vs-instantaneous frame-rate trade-off from the paper's
// introduction, with pictures.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"chopin/internal/multigpu"
	"chopin/internal/sfr"
	"chopin/internal/trace"
)

// exampleScale returns the workload scale: def by default, overridable via
// the CHOPIN_EXAMPLE_SCALE environment variable (the repository's smoke
// test uses a tiny scale to run every example quickly).
func exampleScale(def float64) float64 {
	if s := os.Getenv("CHOPIN_EXAMPLE_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return def
}

func main() {
	const (
		benchName = "cod2"
		frames    = 6
	)
	scale := exampleScale(0.1)
	b, err := trace.ByName(benchName)
	if err != nil {
		log.Fatal(err)
	}
	seq := trace.GenerateSequence(b, scale, frames)
	fmt.Printf("%s: %d frames of %d draws at %dx%d\n\n",
		benchName, frames, len(seq[0].Draws), seq[0].Width, seq[0].Height)

	cfg := multigpu.DefaultConfig()
	cfg.GroupThreshold = 256

	// Render each frame under CHOPIN and save the display images.
	for i, fr := range seq {
		sys, err := multigpu.New(cfg, fr.Width, fr.Height)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := (sfr.CHOPIN{}).Run(sys, fr); err != nil {
			log.Fatal(err)
		}
		img := sys.AssembleImage(0)
		name := fmt.Sprintf("frame%02d.png", i)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := img.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (checksum %016x)\n", name, img.Checksum())
	}

	// Compare the two multi-GPU strategies on the whole sequence.
	afrSys, err := multigpu.New(cfg, seq[0].Width, seq[0].Height)
	if err != nil {
		log.Fatal(err)
	}
	afr, err := sfr.RunAFR(afrSys, seq)
	if err != nil {
		log.Fatal(err)
	}
	chop, err := sfr.RunSFRSequence(cfg, sfr.CHOPIN{}, seq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %20s %20s %16s\n", "scheme", "avg frame interval", "max frame interval", "avg latency")
	for _, s := range []*sfr.SequenceStats{afr, chop} {
		fmt.Printf("%-8s %20.0f %20d %16.0f\n",
			s.Scheme, s.AvgFrameInterval(), s.MaxFrameInterval(), s.AvgLatency())
	}
	fmt.Println("\nAFR: better average frame rate; CHOPIN (SFR): better latency and steady pacing")
}
