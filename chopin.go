// Package chopin is a from-scratch reproduction of CHOPIN — "Scalable
// Graphics Rendering in Multi-GPU Systems via Parallel Image Composition"
// (Ren and Lis, HPCA 2021) — as a reusable Go library.
//
// The library contains a complete execution-driven, cycle-level multi-GPU
// rendering simulator: a software graphics pipeline (vertex shading,
// rasterization, early/late depth testing, blending), an inter-GPU link
// fabric with bandwidth/latency/port contention, synthetic game-frame
// workloads matching the paper's Table III, three split-frame rendering
// schemes (primitive duplication, GPUpd, and CHOPIN itself with its
// draw-command and image-composition schedulers), a standalone parallel
// image-composition library (direct-send, binary-swap, radix-k), and
// runners that regenerate every table and figure in the paper's evaluation.
//
// # Quick start
//
//	fr, _ := chopin.GenerateTrace("cry", 0.25)
//	base, _ := chopin.Simulate(chopin.Config{Scheme: chopin.SchemeDuplication}, fr)
//	fast, _ := chopin.Simulate(chopin.Config{Scheme: chopin.SchemeCHOPIN}, fr)
//	fmt.Printf("CHOPIN speedup: %.2fx\n", fast.SpeedupOver(base))
//
// Simulations are deterministic: the same configuration and trace always
// produce bit-identical cycle counts and images. A distributed run's final
// image equals the single-GPU reference image, which the test suite checks
// pixel-by-pixel.
package chopin

import (
	"fmt"

	"chopin/internal/core"
	"chopin/internal/framebuffer"
	"chopin/internal/multigpu"
	"chopin/internal/primitive"
	"chopin/internal/sfr"
	"chopin/internal/sim"
	"chopin/internal/stats"
	"chopin/internal/trace"
)

// Frame is a single-frame rendering workload: an ordered draw-command
// stream plus camera and screen configuration.
type Frame = primitive.Frame

// Image is a rendered framebuffer (colour + depth + stencil planes with
// 64×64-pixel tile granularity).
type Image = framebuffer.Buffer

// Scheme selects a split-frame rendering implementation.
type Scheme string

// The available rendering schemes.
const (
	// SchemeDuplication is conventional SFR: every GPU geometry-processes
	// all primitives and rasterizes only its own screen tiles.
	SchemeDuplication Scheme = "duplication"
	// SchemeGPUpd is the prior state of the art: cooperative primitive
	// projection followed by sequential order-preserving distribution.
	SchemeGPUpd Scheme = "gpupd"
	// SchemeCHOPIN is the paper's contribution with both schedulers
	// enabled.
	SchemeCHOPIN Scheme = "chopin"
	// SchemeCHOPINNaive is CHOPIN without the image-composition scheduler
	// (naive direct-send exchange).
	SchemeCHOPINNaive Scheme = "chopin-naive"
	// SchemeCHOPINRoundRobin is CHOPIN with naive round-robin draw
	// scheduling instead of the least-remaining-triangles scheduler.
	SchemeCHOPINRoundRobin Scheme = "chopin-rr"
	// SchemeSortMiddle is sort-middle SFR: split geometry processing, then
	// redistribute transformed primitives to tile owners (the
	// taxonomy-completing scheme the paper dismisses as bandwidth-bound).
	SchemeSortMiddle Scheme = "sort-middle"
)

// Config selects the simulated system. The zero value means: CHOPIN on the
// paper's 8-GPU Table II system with real links.
type Config struct {
	// Scheme is the rendering scheme (default SchemeCHOPIN).
	Scheme Scheme
	// GPUs is the GPU count (default 8).
	GPUs int
	// IdealLinks removes all link bandwidth/latency constraints (the
	// paper's Ideal* variants).
	IdealLinks bool
	// BandwidthGBps overrides the per-link bandwidth (default 64).
	BandwidthGBps float64
	// LatencyCycles overrides the link latency (default 200).
	LatencyCycles int
	// GroupThreshold overrides the composition-group primitive threshold
	// (default 4096, Fig. 7/22). It is denominated in trace triangles; for
	// scaled traces pass a proportionally scaled value.
	GroupThreshold int
	// UpdateInterval overrides the draw-scheduler status-update interval in
	// triangles (default 1, Fig. 18).
	UpdateInterval int
	// CustomScheduler plugs a user-defined draw-command scheduler into the
	// CHOPIN schemes (see package documentation for the interface).
	CustomScheduler DrawScheduler
	// Verify runs the simulation with the runtime invariant checker
	// attached: composition order-independence (the distributed image must
	// equal the sequential single-GPU reference pixel-by-pixel), fragment
	// conservation across the inter-GPU fabric, per-pixel depth-test
	// monotonicity at every composition merge, and event-time monotonicity
	// in the discrete-event engine. Violations are reported through
	// Report.Violations and as an error from Simulate. Verified runs are
	// slower (the reference image is re-rendered and merges are snapshotted).
	Verify bool
}

// DrawScheduler decides which GPU executes each draw command; implement it
// to experiment with custom CHOPIN scheduling policies.
type DrawScheduler = core.DrawScheduler

// Report is the outcome of simulating one frame.
type Report struct {
	// Scheme and GPUs echo the configuration.
	Scheme Scheme
	GPUs   int
	// Cycles is the frame's simulated execution time in GPU cycles.
	Cycles int64
	// Stats exposes the full measurement record (phases, traffic,
	// fragment counters, per-GPU summaries).
	Stats *stats.FrameStats

	sys *multigpu.System
}

// SpeedupOver returns base.Cycles / r.Cycles.
func (r *Report) SpeedupOver(base *Report) float64 {
	return float64(base.Cycles) / float64(r.Cycles)
}

// Image assembles the display image (each GPU's owned tiles of render
// target 0).
func (r *Report) Image() *Image { return r.sys.AssembleImage(0) }

// Benchmarks returns the names of the built-in Table III workloads.
func Benchmarks() []string { return trace.Names() }

// GenerateTrace synthesizes the named benchmark's single-frame trace at the
// given scale (1.0 reproduces the paper's draw/triangle counts; smaller
// values shrink the workload proportionally for quick runs).
func GenerateTrace(name string, scale float64) (*Frame, error) {
	b, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	return trace.Generate(b, scale), nil
}

// systemConfig converts a public Config to the internal system config.
func systemConfig(cfg Config) (multigpu.Config, sfr.Scheme, error) {
	mc := multigpu.DefaultConfig()
	if cfg.GPUs > 0 {
		mc.NumGPUs = cfg.GPUs
	}
	if cfg.IdealLinks {
		mc.Link.Ideal = true
	}
	if cfg.BandwidthGBps > 0 {
		mc.Link.BytesPerCycle = cfg.BandwidthGBps // GB/s at 1 GHz
	}
	if cfg.LatencyCycles > 0 {
		mc.Link.LatencyCycles = sim.Cycle(cfg.LatencyCycles)
	}
	if cfg.GroupThreshold > 0 {
		mc.GroupThreshold = cfg.GroupThreshold
	}
	if cfg.UpdateInterval > 0 {
		mc.SchedulerQuantum = cfg.UpdateInterval
	}
	mc.Verify = cfg.Verify
	var s sfr.Scheme
	switch cfg.Scheme {
	case SchemeDuplication:
		s = sfr.Duplication{}
	case SchemeGPUpd:
		s = sfr.GPUpd{}
	case SchemeCHOPIN, "":
		s = sfr.CHOPIN{Scheduler: cfg.CustomScheduler}
	case SchemeCHOPINNaive:
		mc.UseCompScheduler = false
		s = sfr.CHOPIN{Scheduler: cfg.CustomScheduler}
	case SchemeCHOPINRoundRobin:
		mc.UseCompScheduler = false
		s = sfr.CHOPIN{RoundRobin: true}
	case SchemeSortMiddle:
		s = sfr.SortMiddle{}
	default:
		return mc, nil, fmt.Errorf("chopin: unknown scheme %q", cfg.Scheme)
	}
	return mc, s, nil
}

// Simulate runs one frame under the configured scheme and returns its
// report. The frame is not modified and may be shared across simulations.
//
// With Config.Verify set, the run is validated by the invariant checker;
// if any invariant is violated the report is still returned (so the
// violations and statistics can be inspected) together with a non-nil error.
func Simulate(cfg Config, fr *Frame) (*Report, error) {
	mc, scheme, err := systemConfig(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := multigpu.New(mc, fr.Width, fr.Height)
	if err != nil {
		return nil, err
	}
	st, err := scheme.Run(sys, fr)
	rep := &Report{
		Scheme: cfg.Scheme,
		GPUs:   mc.NumGPUs,
		Cycles: int64(st.TotalCycles),
		Stats:  st,
		sys:    sys,
	}
	if err != nil {
		return rep, err
	}
	if len(st.Violations) > 0 {
		return rep, fmt.Errorf("chopin: %d invariant violation(s) in verified %s run: %s",
			len(st.Violations), scheme.Name(), st.Violations[0])
	}
	return rep, nil
}

// Violations returns the invariant violations detected when the run was
// verified (Config.Verify). It is empty for unverified and clean runs.
func (r *Report) Violations() []string { return r.Stats.Violations }

// ReferenceImage renders the frame functionally on a single GPU — the
// golden image every distributed scheme must reproduce.
func ReferenceImage(fr *Frame) *Image {
	return sfr.ReferenceImages(fr, multigpu.DefaultConfig().Raster)[0]
}

// ScaledThreshold converts a paper triangle threshold (e.g. the 4096-
// primitive group threshold) to a scaled trace's proportional equivalent.
func ScaledThreshold(paperValue int, scale float64) int {
	v := int(float64(paperValue) * scale)
	if v < 16 {
		v = 16
	}
	return v
}
