package chopin

// One benchmark per paper table/figure: each Benchmark* regenerates the
// corresponding experiment at a reduced trace scale and reports headline
// metrics (gmean speedups, traffic, shares) via b.ReportMetric. Run the
// cmd/chopinsim CLI with -scale 1.0 for full, paper-size reproductions;
// EXPERIMENTS.md records those numbers against the paper's.

import (
	"strconv"
	"strings"
	"testing"

	"chopin/internal/experiments"
)

// benchOptions keeps the per-iteration cost of `go test -bench=.` sensible:
// a 10% workload over three representative traces (two resolutions, small
// and large triangle counts).
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:      0.10,
		Benchmarks: []string{"cod2", "grid", "wolf"},
	}
}

// runExperiment executes the experiment once per benchmark iteration and
// returns the last result for metric extraction.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return res
}

// lastRowFloat extracts column col (0-based, after the row label) of the
// table's final row — the GMean/Avg row for most experiments.
func lastRowFloat(b *testing.B, res *experiments.Result, col int) float64 {
	b.Helper()
	lines := strings.Split(strings.TrimSpace(res.Table.String()), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	if col+1 >= len(fields) {
		return 0
	}
	v := strings.TrimSuffix(fields[col+1], "%")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return f
}

func BenchmarkFig02GeometryShare(b *testing.B) {
	res := runExperiment(b, "fig2")
	b.ReportMetric(lastRowFloat(b, res, 3), "geo%@8gpu")
}

func BenchmarkFig04GPUpdOverhead(b *testing.B) {
	runExperiment(b, "fig4")
}

func BenchmarkFig05IdealSpeedup(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(lastRowFloat(b, res, 2), "idealchopin_gmean")
}

func BenchmarkFig08RoundRobin(b *testing.B) {
	res := runExperiment(b, "fig8")
	b.ReportMetric(lastRowFloat(b, res, 2), "roundrobin_gmean")
}

func BenchmarkFig09TriangleRate(b *testing.B) {
	runExperiment(b, "fig9")
}

func BenchmarkFig13Speedup(b *testing.B) {
	res := runExperiment(b, "fig13")
	b.ReportMetric(lastRowFloat(b, res, 3), "chopin+cs_gmean")
}

func BenchmarkFig14Breakdown(b *testing.B) {
	runExperiment(b, "fig14")
}

func BenchmarkFig15DepthTest(b *testing.B) {
	runExperiment(b, "fig15")
}

func BenchmarkFig16CullSensitivity(b *testing.B) {
	runExperiment(b, "fig16")
}

func BenchmarkFig17Traffic(b *testing.B) {
	res := runExperiment(b, "fig17")
	b.ReportMetric(lastRowFloat(b, res, 0), "avg_comp_MB")
}

func BenchmarkFig18UpdateFreq(b *testing.B) {
	res := runExperiment(b, "fig18")
	b.ReportMetric(lastRowFloat(b, res, 2), "chopin+cs@1024")
}

func BenchmarkFig19GPUCount(b *testing.B) {
	res := runExperiment(b, "fig19")
	b.ReportMetric(lastRowFloat(b, res, 3), "chopin+cs@16gpu")
}

func BenchmarkFig20Bandwidth(b *testing.B) {
	res := runExperiment(b, "fig20")
	b.ReportMetric(lastRowFloat(b, res, 3), "chopin+cs@128GBps")
}

func BenchmarkFig21Latency(b *testing.B) {
	res := runExperiment(b, "fig21")
	b.ReportMetric(lastRowFloat(b, res, 3), "chopin+cs@400cy")
}

func BenchmarkFig22Threshold(b *testing.B) {
	res := runExperiment(b, "fig22")
	b.ReportMetric(lastRowFloat(b, res, 2), "chopin+cs@16384")
}

func BenchmarkTab2Config(b *testing.B) {
	runExperiment(b, "tab2")
}

func BenchmarkTab3Benchmarks(b *testing.B) {
	runExperiment(b, "tab3")
}

func BenchmarkSec6DSchedulerTraffic(b *testing.B) {
	runExperiment(b, "sec6d")
}

func BenchmarkSec6EGroupCoverage(b *testing.B) {
	runExperiment(b, "sec6e")
}

func BenchmarkSec6FHardwareCost(b *testing.B) {
	runExperiment(b, "sec6f")
}

func BenchmarkExtAFRMicroStutter(b *testing.B) {
	runExperiment(b, "ext-afr")
}

func BenchmarkExtReorderAblation(b *testing.B) {
	res := runExperiment(b, "ext-reorder")
	// The GMean row's empty cells collapse under Fields; the reordered
	// gmean is the second remaining value.
	b.ReportMetric(lastRowFloat(b, res, 1), "reorder_gmean")
}
